"""Tests for distributed campaigns (repro.fuzz.dist) and the client
retry budget (repro.service.client).

Four layers:

* **lease protocol** against a real daemon — ``campaign.heartbeat``
  answers with the lease table, and a pipelined ``campaign.lease`` /
  ``campaign.result`` pair returns rows plus the newly-computed O0
  reference for tasks whose coordinator does not hold it yet;
* **DistRunner units** against fake daemons — a host that dies on its
  first lease is marked dead and its batch re-run locally (zero lost
  tasks), a host that keeps erroring a batch exhausts
  ``MAX_LEASE_ATTEMPTS`` and falls back locally, and all-hosts-dead
  drains every batch in-process;
* **host pins** — ``hosts.json`` round trip and every refusal mode of
  ``resolve_host_pins`` / ``check_host_fingerprints``;
* **client retry** — transient transport failures are retried with the
  counted budget, structured errors are not, and an exhausted budget
  counts both the legacy unreachable outcome and the fallback reason.

The end-to-end byte-identity test runs a small campaign twice — one
local pool, one distributed over two one-worker daemons — and asserts
the trees match byte for byte.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.fuzz.campaign import CampaignConfig, _materialize, run_campaign
from repro.fuzz.dist import (
    MAX_LEASE_ATTEMPTS,
    DistRunner,
    HostConn,
    HostError,
    host_fingerprint,
)
from repro.fuzz.shard import (
    CampaignStateError,
    check_host_fingerprints,
    content_hash,
    load_host_pins,
    resolve_host_pins,
    write_host_pins,
)
from repro.service import client as svc
from repro.service import protocol


def _counter(snap, name, **labels):
    """Sum of a counter's series matching ``labels`` in a snapshot."""
    for fam in snap.get("metrics", ()):
        if fam["name"] != name:
            continue
        return sum(
            s["value"]
            for s in fam["series"]
            if all(s["labels"].get(k) == v for k, v in labels.items())
        )
    return 0


def _free_dead_addr() -> str:
    """An address that is guaranteed closed (bound once, then freed)."""
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return f"127.0.0.1:{port}"


def _task(seed: int, kind: str = "screen") -> dict:
    """A self-describing campaign task dict, as the scheduler emits."""
    t = {"key": f"s{seed:06d}", "kind": kind, "seed": seed,
         "variant": None, "bug": None, "max_steps": None}
    spec = _materialize(t)
    t["hash"] = content_hash(spec.name, spec.source, spec.bindings)
    return t


# -- real daemons -------------------------------------------------------------


def _spawn_daemon(root: Path, name: str):
    addr_file = root / f"{name}.addr"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))
    env["REPRO_CACHE_DIR"] = str(root / f"{name}-cache")
    env.pop("REPRO_SERVICE_ADDR", None)
    log = open(root / f"{name}.log", "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", "0", "--workers", "1", "--shards", "4",
         "--store", str(root / f"{name}-store"),
         "--addr-file", str(addr_file)],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.time() + 60
    while not addr_file.exists():
        if proc.poll() is not None:
            log.close()
            raise RuntimeError(f"daemon {name} died during startup:\n"
                               + (root / f"{name}.log").read_text())
        if time.time() > deadline:
            proc.kill()
            raise RuntimeError(f"daemon {name} did not write its addr file")
        time.sleep(0.05)
    return proc, addr_file.read_text().strip(), log


@pytest.fixture(scope="module")
def daemons(tmp_path_factory):
    """Two one-worker daemons with private stores and caches."""
    root = tmp_path_factory.mktemp("dist")
    started = [_spawn_daemon(root, f"d{i}") for i in (1, 2)]
    yield [addr for _, addr, _ in started]
    for proc, addr, log in started:
        try:
            svc.shutdown(addr)
            proc.wait(timeout=15)
        except Exception:
            proc.kill()
            proc.wait(timeout=15)
        log.close()


class TestLeaseProtocol:
    def test_heartbeat_reports_lease_table(self, daemons):
        resp = svc.request(daemons[0], {"op": "campaign.heartbeat",
                                        "id": 7, "params": {}})
        assert resp["ok"] and resp["id"] == 7
        assert resp["leases"] == {}  # nothing leased on this connection

    def test_lease_needs_tasks(self, daemons):
        with pytest.raises(svc.ServiceError) as ei:
            svc.request(daemons[0], {"op": "campaign.lease", "id": 1,
                                     "params": {"lease": "Lx", "tasks": []}})
        assert ei.value.code == "bad-request"

    def test_pipelined_lease_result_roundtrip(self, daemons):
        """One lease + its result pipelined on a persistent connection:
        rows come back keyed and hashed, and the unknown reference is
        exported back to the coordinator."""
        t = _task(1)
        conn = HostConn(daemons[0])
        try:
            rid_lease = conn.send("campaign.lease", {
                "lease": "Ltest-rt", "tasks": [{**t, "ref_known": False}],
                "refs": {}})
            rid_result = conn.send("campaign.result", {"lease": "Ltest-rt"})
            got: dict = {}
            deadline = time.time() + 120
            while rid_result not in got:
                assert time.time() < deadline, "no lease result in 120s"
                for m in conn.recv_ready():
                    got[m.get("id")] = m
            assert got[rid_lease]["ok"], got[rid_lease]
            result = got[rid_result]
            assert result["ok"], result
            assert [r["key"] for r in result["rows"]] == [t["key"]]
            assert result["rows"][0]["hash"] == t["hash"]
            assert t["hash"] in result["refs"]  # exported, coordinator-bound
            assert result.get("snapshot")  # per-batch telemetry delta
        finally:
            conn.close()

    def test_shipped_ref_is_not_exported_back(self, daemons):
        """ref_known tasks never trigger a reference export — the
        coordinator already holds it."""
        t = _task(2)
        conn = HostConn(daemons[0])
        try:
            rid_lease = conn.send("campaign.lease", {
                "lease": "Ltest-known",
                "tasks": [{**t, "ref_known": True}], "refs": {}})
            rid_result = conn.send("campaign.result",
                                   {"lease": "Ltest-known"})
            got: dict = {}
            deadline = time.time() + 120
            while rid_result not in got:
                assert time.time() < deadline, "no lease result in 120s"
                for m in conn.recv_ready():
                    got[m.get("id")] = m
            assert got[rid_lease]["ok"]
            assert got[rid_result]["ok"]
            assert got[rid_result]["refs"] == {}
        finally:
            conn.close()


# -- fake daemons for failure-path units --------------------------------------


class _FakeDaemon(threading.Thread):
    """Speaks just enough protocol to test DistRunner failure paths.

    ``on_lease`` decides the behaviour: ``"close"`` drops the connection
    the moment a lease arrives (a kill -9), ``"error"`` acks the lease
    and fails its result (a deterministic remote crash).
    """

    def __init__(self, on_lease: str):
        super().__init__(daemon=True)
        self.on_lease = on_lease
        self.srv = socket.socket()
        self.srv.bind(("127.0.0.1", 0))
        self.srv.listen(8)
        self.srv.settimeout(0.2)
        self.addr = f"127.0.0.1:{self.srv.getsockname()[1]}"
        self.stopping = False
        self.leases_seen = 0

    def run(self):
        while not self.stopping:
            try:
                conn, _ = self.srv.accept()
            except socket.timeout:
                continue
            try:
                self._serve(conn)
            finally:
                conn.close()
        self.srv.close()

    def _serve(self, conn):
        f = conn.makefile("rb")
        while not self.stopping:
            line = f.readline()
            if not line:
                return
            msg = protocol.decode(line)
            op, rid = msg.get("op"), msg.get("id")
            if op == "ping":
                conn.sendall(protocol.encode(
                    {"ok": True, "id": rid, "protocol": 2,
                     "version": "fake"}))
            elif op == "status":
                conn.sendall(protocol.encode(
                    {"ok": True, "id": rid, "status": {
                        "workers": 1, "version": "fake", "protocol": 2,
                        "store": {"root": "/fake", "shards": 4}}}))
            elif op == "campaign.heartbeat":
                conn.sendall(protocol.encode(
                    {"ok": True, "id": rid, "leases": {}}))
            elif op == "campaign.lease":
                self.leases_seen += 1
                if self.on_lease == "close":
                    return  # connection drops mid-lease
                conn.sendall(protocol.encode({"ok": True, "id": rid}))
            elif op == "campaign.result":
                conn.sendall(protocol.encode(
                    {"ok": False, "id": rid, "error": {
                        "code": "internal", "message": "boom"}}))

    def stop(self):
        self.stopping = True
        self.join(timeout=5)


@pytest.fixture
def fake_daemon(request):
    d = _FakeDaemon(request.param)
    d.start()
    yield d
    d.stop()


def _echo_task(t: dict) -> dict:
    return {"key": t["key"], "ok": True, "ran": "local"}


class TestDistRunnerFailures:
    def test_needs_at_least_one_host(self):
        with pytest.raises(ValueError):
            DistRunner([], _echo_task)

    def test_duplicate_hosts_collapse(self):
        r = DistRunner(["a:1", "a:1", "b:2"], _echo_task)
        assert [h.addr for h in r.hosts] == ["a:1", "b:2"]

    def test_strict_connect_refuses_unreachable_host(self):
        r = DistRunner([_free_dead_addr()], _echo_task)
        with pytest.raises(HostError):
            r.connect(strict=True)

    def test_all_hosts_dead_drains_locally(self):
        """Non-strict connect against a dead host: every batch runs
        in-process and none are lost."""
        r = DistRunner([_free_dead_addr()], _echo_task)
        fps = r.connect(strict=False)
        assert list(fps.values()) == [None]
        batches = [(0, [_dummy(0), _dummy(1)]), (1, [_dummy(2)])]
        results = r.run_round(batches)
        assert sorted(results) == [0, 1]
        assert [row["key"] for row in results[0]] == ["t0", "t1"]
        assert r.stats["local_batches"] == 2
        assert r.stats["dead_hosts"] == 1
        assert r.stats["leases"] == 0

    @pytest.mark.parametrize("fake_daemon", ["close"], indirect=True)
    def test_connection_drop_releases_and_falls_back(self, fake_daemon):
        """A host that dies holding a lease: the batch is released and
        (no hosts left) completed locally — zero lost tasks."""
        r = DistRunner([fake_daemon.addr], _echo_task, lease_timeout=5.0)
        r.connect(strict=True)
        try:
            results = r.run_round([(0, [_dummy(0)])])
        finally:
            r.close()
        assert [row["key"] for row in results[0]] == ["t0"]
        assert r.stats["leases"] == 1
        assert r.stats["releases"] == 1
        assert r.stats["dead_hosts"] == 1
        assert r.stats["local_batches"] == 1

    @pytest.mark.parametrize("fake_daemon", ["error"], indirect=True)
    def test_remote_errors_exhaust_attempts_then_run_locally(
            self, fake_daemon):
        """A batch that errors on every lease bounces MAX_LEASE_ATTEMPTS
        times, then runs in the coordinator (which surfaces the real
        answer instead of looping forever)."""
        r = DistRunner([fake_daemon.addr], _echo_task, lease_timeout=5.0)
        r.connect(strict=True)
        try:
            results = r.run_round([(3, [_dummy(7)])])
        finally:
            r.close()
        assert [row["key"] for row in results[3]] == ["t7"]
        assert r.stats["leases"] == MAX_LEASE_ATTEMPTS
        assert fake_daemon.leases_seen == MAX_LEASE_ATTEMPTS
        assert r.stats["local_batches"] == 1
        assert r.stats["dead_hosts"] == 0  # the host stayed healthy


def _dummy(i: int) -> dict:
    return {"key": f"t{i}", "hash": f"h{i}"}


# -- host pins ----------------------------------------------------------------


class TestHostPins:
    FP = {"version": "0.9", "protocol": 2, "store_root": "/s", "shards": 16}

    def test_round_trip_sorts_hosts(self, tmp_path):
        write_host_pins(tmp_path, ["b:2", "a:1"], {"a:1": self.FP,
                                                   "b:2": self.FP})
        pins = load_host_pins(tmp_path)
        assert pins["hosts"] == ["a:1", "b:2"]
        assert pins["fingerprints"]["a:1"] == self.FP

    def test_unpinned_campaign_has_no_pins(self, tmp_path):
        assert load_host_pins(tmp_path) is None
        assert resolve_host_pins(tmp_path, None) is None

    def test_resume_without_hosts_uses_pinned(self, tmp_path):
        write_host_pins(tmp_path, ["a:1", "b:2"], {})
        assert resolve_host_pins(tmp_path, None) == ["a:1", "b:2"]

    def test_resume_with_same_set_any_order_is_fine(self, tmp_path):
        write_host_pins(tmp_path, ["a:1", "b:2"], {})
        assert resolve_host_pins(tmp_path, ["b:2", "a:1"]) == ["a:1", "b:2"]

    def test_resume_with_different_hosts_is_refused(self, tmp_path):
        write_host_pins(tmp_path, ["a:1", "b:2"], {})
        with pytest.raises(CampaignStateError, match="different host set"):
            resolve_host_pins(tmp_path, ["a:1", "c:3"])

    def test_single_host_campaign_refuses_hosts_flag(self, tmp_path):
        with pytest.raises(CampaignStateError, match="single-host"):
            resolve_host_pins(tmp_path, ["a:1"])

    def test_corrupt_pins_are_a_state_error(self, tmp_path):
        (tmp_path / "hosts.json").write_text("{nope")
        with pytest.raises(CampaignStateError, match="corrupt"):
            load_host_pins(tmp_path)

    def test_changed_fingerprint_is_refused(self, tmp_path):
        pinned = {"hosts": ["a:1"], "fingerprints": {"a:1": self.FP}}
        other = dict(self.FP, store_root="/elsewhere")
        with pytest.raises(CampaignStateError, match="changed identity"):
            check_host_fingerprints(tmp_path, pinned, {"a:1": other})

    def test_unreachable_host_passes_fingerprint_check(self, tmp_path):
        pinned = {"hosts": ["a:1"], "fingerprints": {"a:1": self.FP}}
        check_host_fingerprints(tmp_path, pinned, {"a:1": None})

    def test_fingerprint_drops_runtime_knobs(self):
        fp = host_fingerprint({"version": "0.9", "protocol": 2,
                               "workers": 8, "inflight": 3,
                               "store": {"root": "/s", "shards": 16,
                                         "per_shard": []}})
        assert fp == {"version": "0.9", "protocol": 2,
                      "store_root": "/s", "shards": 16}


# -- client retry -------------------------------------------------------------


def _one_shot_server(refuse: int, response):
    """Refuse (accept+close) ``refuse`` connections, then serve one
    request with ``response(request_dict)``."""
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    addr = f"127.0.0.1:{srv.getsockname()[1]}"

    def run():
        for _ in range(refuse):
            c, _ = srv.accept()
            c.close()
        c, _ = srv.accept()
        with c.makefile("rb") as f:
            req = json.loads(f.readline())
        c.sendall(protocol.encode(response(req)))
        c.close()
        srv.close()

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return addr, t


class TestClientRetry:
    def test_transient_failures_are_retried_and_counted(self, monkeypatch):
        monkeypatch.setenv(svc.RETRY_BASE_ENV, "0.001")
        addr, t = _one_shot_server(
            refuse=2,
            response=lambda req: {"ok": True, "id": req["id"], "pong": 1})
        before = telemetry.snapshot(include_spans=False)
        resp = svc.request_with_retry(
            addr, {"op": "ping", "id": 5, "params": {}}, timeout=10)
        t.join(timeout=5)
        after = telemetry.snapshot(include_spans=False)
        assert resp["ok"] and resp["pong"] == 1
        assert (_counter(after, "repro_service_retries_total", op="ping")
                - _counter(before, "repro_service_retries_total", op="ping")
                ) == 2

    def test_structured_errors_are_not_retried(self, monkeypatch):
        monkeypatch.setenv(svc.RETRY_BASE_ENV, "0.001")
        addr, t = _one_shot_server(
            refuse=0,
            response=lambda req: {"ok": False, "id": req["id"], "error": {
                "code": "manifest-mismatch", "message": "nope"}})
        before = telemetry.snapshot(include_spans=False)
        with pytest.raises(svc.ServiceError) as ei:
            svc.request_with_retry(
                addr, {"op": "build", "id": 1, "params": {}}, timeout=10)
        t.join(timeout=5)
        after = telemetry.snapshot(include_spans=False)
        assert ei.value.code == "manifest-mismatch"
        assert (_counter(after, "repro_service_retries_total")
                == _counter(before, "repro_service_retries_total"))

    def test_exhausted_budget_falls_back_with_both_counters(
            self, monkeypatch):
        monkeypatch.setenv(svc.ADDR_ENV, _free_dead_addr())
        monkeypatch.setenv(svc.RETRY_ATTEMPTS_ENV, "2")
        monkeypatch.setenv(svc.RETRY_BASE_ENV, "0.001")
        before = telemetry.snapshot(include_spans=False)
        out = svc.maybe_remote_build("void k(){}", "k", "supervec+v",
                                    True, 4, False)
        after = telemetry.snapshot(include_spans=False)
        assert out is None

        def delta(name, **labels):
            return (_counter(after, name, **labels)
                    - _counter(before, name, **labels))

        assert delta("repro_service_retries_total", op="build") == 1
        assert delta("repro_service_client_requests_total",
                     outcome="unreachable") == 1
        assert delta("repro_service_fallback_total") == 1

    def test_attempts_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(svc.RETRY_ATTEMPTS_ENV, "0")
        assert svc.retry_attempts() == 1


# -- end to end: distributed == single host -----------------------------------


def _tree(root: Path) -> dict:
    out = {}
    skip = {"hosts.json", "fuzz_telemetry.json"}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "cache"]
        for name in sorted(filenames):
            if name in skip:
                continue
            p = Path(dirpath) / name
            out[str(p.relative_to(root))] = p.read_bytes()
    return out


class TestDistributedCampaign:
    def test_distributed_tree_is_byte_identical(self, tmp_path, daemons):
        """The same seed mix through a local pool and through two
        daemons must produce byte-identical manifests, records, and
        findings — host count is a pure runtime knob."""
        cfg = CampaignConfig(seeds=6, bug="drop-guard", batch=2,
                             round_batches=2, audit_every=4, mutate=False)
        single = run_campaign(tmp_path / "single", cfg, jobs=1)
        dist = run_campaign(tmp_path / "dist", cfg, hosts=list(daemons))
        assert single.tasks == dist.tasks
        assert single.failed == dist.failed
        assert single.findings == dist.findings
        assert dist.dist["leases"] > 0
        assert dist.dist["dead_hosts"] == 0

        pins = load_host_pins(tmp_path / "dist")
        assert pins["hosts"] == sorted(daemons)
        for a in daemons:
            assert pins["fingerprints"][a]["protocol"] >= 2

        s_tree, d_tree = _tree(tmp_path / "single"), _tree(tmp_path / "dist")
        assert s_tree.keys() == d_tree.keys()
        diff = [k for k in s_tree if s_tree[k] != d_tree[k]]
        assert not diff, diff
        # the distributed tree really is pinned; the single one is not
        assert (tmp_path / "dist" / "hosts.json").exists()
        assert not (tmp_path / "single" / "hosts.json").exists()

        # replay iteration must skip the pin file and load every
        # remaining JSON as a corpus entry
        from repro.fuzz.corpus import iter_entries, load_entry
        entries = list(iter_entries(tmp_path / "dist"))
        assert all(p.name != "hosts.json" for p in entries)
        for p in entries:
            load_entry(p)

    def test_resume_refuses_a_different_host_set(self, tmp_path, daemons):
        cfg = CampaignConfig(seeds=2, batch=2, round_batches=2,
                             mutate=False)
        run_campaign(tmp_path / "camp", cfg, hosts=[daemons[0]])
        with pytest.raises(CampaignStateError, match="different host set"):
            run_campaign(tmp_path / "camp", resume=True,
                         hosts=[_free_dead_addr()])
