"""Differential tests: the compiled backend is bit-identical to the reference.

Every workload suite is built once per pipeline level and executed on
both backends against the *same* module object; return value, checksum,
cycle count, and every dynamic counter (including the per-opcode
breakdown) must match exactly — no tolerances.  This is the contract
that lets the measurement harness default to the compiled executor while
the tree-walking interpreter stays the semantics of record.
"""

import pytest

from repro.interp import (
    BACKENDS,
    CompiledExecutor,
    Interpreter,
    StepLimitExceeded,
    clear_compile_cache,
    compile_function,
)
from repro.interp.compile import CompiledProgram
from repro.perf import measure
from repro.workloads import polybench, speclike, tsvc

LEVELS = ["O0", "O3", "supervec", "supervec+v"]

POLYBENCH = polybench.workloads()
TSVC = tsvc.workloads()
SPECLIKE = speclike.workloads()


def _ids(ws):
    return [w.name for w in ws]


def assert_backends_agree(workload, level, honor_restrict=True, rle=False):
    """Build once, run on both backends, demand exact equality."""
    module, stats = measure.build(
        workload, level, honor_restrict=honor_restrict, rle=rle, use_cache=True
    )
    ref = measure.execute(module, workload, stats, backend="reference")
    got = measure.execute(module, workload, stats, backend="compiled")
    assert got.return_value == ref.return_value
    assert got.checksum == ref.checksum, (
        f"{workload.name} @ {level}: checksum drift"
    )
    assert got.cycles == ref.cycles, (
        f"{workload.name} @ {level}: cycle drift "
        f"{got.cycles!r} != {ref.cycles!r}"
    )
    assert got.counters.as_dict() == ref.counters.as_dict(), (
        f"{workload.name} @ {level}: counter drift"
    )


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("workload", POLYBENCH, ids=_ids(POLYBENCH))
def test_polybench_identical(workload, level):
    assert_backends_agree(workload, level)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("workload", TSVC, ids=_ids(TSVC))
def test_tsvc_identical(workload, level):
    assert_backends_agree(workload, level)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("workload", SPECLIKE, ids=_ids(SPECLIKE))
def test_speclike_identical(workload, level):
    assert_backends_agree(workload, level)


@pytest.mark.parametrize("workload", POLYBENCH[:5], ids=_ids(POLYBENCH[:5]))
def test_restrict_off_identical(workload):
    """No-restrict builds exercise the versioning checks dynamically."""
    assert_backends_agree(workload, "supervec+v", honor_restrict=False)


@pytest.mark.parametrize("workload", SPECLIKE[:3], ids=_ids(SPECLIKE[:3]))
def test_rle_identical(workload):
    """RLE-enabled builds (the Fig. 22 configuration)."""
    assert_backends_agree(workload, "supervec+v", rle=True)


def test_s258_variants_identical():
    """The speculation workloads: parameter aliasing and biased data."""
    for w in (tsvc.s258_parameter_variant(), tsvc.s258_biased()):
        for level in ("O0", "supervec+v"):
            assert_backends_agree(w, level)


# -- compile cache -----------------------------------------------------------


def test_compile_cache_reuses_programs():
    module, _ = measure.build(POLYBENCH[0], "O3", use_cache=False)
    fn = module.functions[POLYBENCH[0].entry]
    p1 = compile_function(fn)
    p2 = compile_function(fn)
    assert p1 is p2, "same function + cost model must hit the compile cache"
    clear_compile_cache()
    p3 = compile_function(fn)
    assert p3 is not p1
    assert isinstance(p3, CompiledProgram)


def test_compiled_executor_shares_programs_across_instances():
    """compile-once/run-many: two executors over one module reuse the
    compiled program, and repeated runs agree with themselves."""
    w = POLYBENCH[0]
    module, _ = measure.build(w, "supervec+v", use_cache=False)
    r1 = measure.execute(module, w, backend="compiled")
    r2 = measure.execute(module, w, backend="compiled")
    assert r1.cycles == r2.cycles
    assert r1.checksum == r2.checksum


# -- harness-level behavior --------------------------------------------------


def test_unknown_backend_rejected():
    w = POLYBENCH[0]
    module, _ = measure.build(w, "O0", use_cache=True)
    with pytest.raises(ValueError, match="unknown backend"):
        measure.execute(module, w, backend="tracing")
    with pytest.raises(ValueError, match="unknown backend"):
        measure.set_default_backend("tracing")


def test_backend_registry_complete():
    assert BACKENDS["reference"] is Interpreter
    assert BACKENDS["compiled"] is CompiledExecutor


def test_reference_cache_hit_and_clear():
    measure.clear_reference_cache()
    w = POLYBENCH[0]
    measure.verified_run(w, "O3")
    assert len(measure._REFERENCE_CACHE) == 1
    measure.verified_run(w, "supervec")  # same workload: reference reused
    assert len(measure._REFERENCE_CACHE) == 1
    measure.clear_reference_cache()
    assert len(measure._REFERENCE_CACHE) == 0
    assert len(measure._RUN_CACHE) == 0


def test_reference_cache_keyed_by_input_data():
    """s258-biased variants share a name but not input data; the cached
    O0 reference must not leak across them."""
    measure.clear_reference_cache()
    a = tsvc.s258_biased(positive_fraction=0.995)
    b = tsvc.s258_biased(positive_fraction=0.0)
    measure.verified_run(a, "supervec+v")
    measure.verified_run(b, "supervec+v")
    assert len(measure._REFERENCE_CACHE) == 2


def test_externals_bypass_run_cache():
    """Workloads with opaque external callables must never serve memoized
    results (the callable cannot be fingerprinted)."""
    calls = []

    def ext(interp, mem, args):
        calls.append(1)
        return 1.0

    w = measure.Workload(
        name="ext-cache-probe",
        source=(
            "extern double cold_func(void);\n"
            "float kernel() { return cold_func(); }"
        ),
        args=[],
        externals={"cold_func": ext},
    )
    measure.clear_reference_cache()
    measure.run_workload(w, "O0", backend="compiled")
    measure.run_workload(w, "O0", backend="compiled")
    assert len(calls) == 2


# -- step limit --------------------------------------------------------------


def test_compiled_step_limit():
    """A runaway loop is bounded by the same max_steps knob."""
    from repro.frontend import compile_c

    src = """
    float kernel(float* X, int n) {
        float s = 0.0;
        for (int i = 0; i < n; i = i) {  /* i never advances */
            s = s + X[0];
        }
        return s;
    }
    """
    module = compile_c(src, name="runaway")
    ex = CompiledExecutor(module, max_steps=100)
    base = ex.memory.alloc(4)
    with pytest.raises(StepLimitExceeded):
        ex.run(module.functions["kernel"], [base, 10])


# -- counters satellite ------------------------------------------------------


def test_counters_as_dict_includes_by_opcode():
    w = POLYBENCH[0]
    res = measure.run_workload(w, "O0", backend="reference", use_cache=False)
    d = res.counters.as_dict()
    assert "by_opcode" in d
    assert d["by_opcode"] == dict(res.counters.by_opcode)
    assert sum(d["by_opcode"].values()) == d["instructions"]
