"""Differential tests: every fast backend is bit-identical to the reference.

Every workload suite is built once per pipeline configuration and
executed on every fast backend against the *same* module object; return
value, checksum, cycle count, and every dynamic counter (including the
per-opcode breakdown) must match exactly — no tolerances.  This is the
contract that lets the measurement harness default to the fused executor
while the tree-walking interpreter stays the semantics of record.

The matrix: each suite runs at every optimization level, with the
vectorizing levels additionally swept across VL in {2, 4, 8}, and each
point checked for ``compiled``, ``fused``, and ``array`` (exact mode)
against ``reference``.
A fused-backend replay of the pinned fuzz corpus rides along.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import load_entry
from repro.fuzz.oracle import Config, check_kernel, default_configs
from repro.interp import (
    BACKENDS,
    ArrayExecutor,
    CompiledExecutor,
    FusedExecutor,
    Interpreter,
    StepLimitExceeded,
    clear_compile_cache,
    clear_fuse_cache,
    compile_function,
    fuse_function,
)
from repro.interp.compile import CompiledProgram
from repro.interp.fuse import FusedProgram
from repro.perf import measure
from repro.workloads import polybench, speclike, tsvc

JIT_BACKENDS = ["compiled", "fused", "array"]

# scalar levels once at the default VL; vectorizing levels across VLs
CONFIGS = [("O0", 4), ("O3", 4)] + [
    (level, vl)
    for level in ("supervec", "supervec+v")
    for vl in (2, 4, 8)
]
CONFIG_IDS = [f"{level}-vl{vl}" for level, vl in CONFIGS]

POLYBENCH = polybench.workloads()
TSVC = tsvc.workloads()
SPECLIKE = speclike.workloads()

CORPUS_DIR = Path(__file__).parent / "corpus"


def _ids(ws):
    return [w.name for w in ws]


def assert_backends_agree(workload, level, vl=4, honor_restrict=True,
                          rle=False, backends=JIT_BACKENDS):
    """Build once, run reference + every fast backend, demand equality."""
    module, stats = measure.build(
        workload, level, honor_restrict=honor_restrict, vl=vl, rle=rle,
        use_cache=True,
    )
    ref = measure.execute(module, workload, stats, backend="reference")
    for backend in backends:
        got = measure.execute(module, workload, stats, backend=backend)
        where = f"{workload.name} @ {level} vl={vl} [{backend}]"
        assert got.return_value == ref.return_value, f"{where}: return drift"
        assert got.checksum == ref.checksum, f"{where}: checksum drift"
        assert got.cycles == ref.cycles, (
            f"{where}: cycle drift {got.cycles!r} != {ref.cycles!r}"
        )
        assert got.counters.as_dict() == ref.counters.as_dict(), (
            f"{where}: counter drift"
        )


@pytest.mark.parametrize("level,vl", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("workload", POLYBENCH, ids=_ids(POLYBENCH))
def test_polybench_identical(workload, level, vl):
    assert_backends_agree(workload, level, vl=vl)


@pytest.mark.parametrize("level,vl", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("workload", TSVC, ids=_ids(TSVC))
def test_tsvc_identical(workload, level, vl):
    assert_backends_agree(workload, level, vl=vl)


@pytest.mark.parametrize("level,vl", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("workload", SPECLIKE, ids=_ids(SPECLIKE))
def test_speclike_identical(workload, level, vl):
    assert_backends_agree(workload, level, vl=vl)


@pytest.mark.parametrize("workload", POLYBENCH[:5], ids=_ids(POLYBENCH[:5]))
def test_restrict_off_identical(workload):
    """No-restrict builds exercise the versioning checks dynamically."""
    assert_backends_agree(workload, "supervec+v", honor_restrict=False)


@pytest.mark.parametrize("workload", SPECLIKE[:3], ids=_ids(SPECLIKE[:3]))
def test_rle_identical(workload):
    """RLE-enabled builds (the Fig. 22 configuration)."""
    assert_backends_agree(workload, "supervec+v", rle=True)


def test_s258_variants_identical():
    """The speculation workloads: parameter aliasing and biased data."""
    for w in (tsvc.s258_parameter_variant(), tsvc.s258_biased()):
        for level in ("O0", "supervec+v"):
            assert_backends_agree(w, level)


# -- fused corpus replay -----------------------------------------------------


@pytest.mark.parametrize(
    "path",
    sorted(p for p in CORPUS_DIR.glob("*.json")
           if p.name != "fuzz_telemetry.json"),  # fuzz-run snapshot, not a kernel
    ids=lambda p: p.stem,
)
def test_fused_corpus_replay(path):
    """Every pinned corpus entry reproduces its recorded outcome when all
    oracle configurations execute on the fused backend."""
    entry = load_entry(path)
    spec = entry.spec()
    cfgs = [
        Config(c.level, c.honor_restrict, c.vl, c.rle, backend="fused")
        for c in default_configs(spec.has_restrict)
    ]
    report = check_kernel(spec, bug=entry.bug, configs=cfgs)
    if entry.expect == "pass":
        assert report.ok, [str(m) for m in report.mismatches]
    else:
        assert not report.ok, f"{path}: expected failure did not reproduce"
        assert "parse" not in report.kinds()


# -- translation caches ------------------------------------------------------


def test_compile_cache_reuses_programs():
    module, _ = measure.build(POLYBENCH[0], "O3", use_cache=False)
    fn = module.functions[POLYBENCH[0].entry]
    p1 = compile_function(fn)
    p2 = compile_function(fn)
    assert p1 is p2, "same function + cost model must hit the compile cache"
    clear_compile_cache()
    p3 = compile_function(fn)
    assert p3 is not p1
    assert isinstance(p3, CompiledProgram)


def test_fuse_cache_reuses_programs():
    module, _ = measure.build(POLYBENCH[0], "O3", use_cache=False)
    fn = module.functions[POLYBENCH[0].entry]
    p1 = fuse_function(fn)
    p2 = fuse_function(fn)
    assert p1 is p2, "same function + cost model must hit the fuse cache"
    clear_fuse_cache()
    p3 = fuse_function(fn)
    assert p3 is not p1
    assert isinstance(p3, FusedProgram)


def test_fused_program_is_straight_line_source():
    """The fused tier really is one generated function per IR function:
    the source is kept for inspection and contains the fused loops."""
    module, _ = measure.build(POLYBENCH[0], "supervec+v", use_cache=False)
    fn = module.functions[POLYBENCH[0].entry]
    prog = fuse_function(fn)
    assert prog.source.startswith("def run(")
    assert "while True:" in prog.source  # loops are native, not closures
    assert prog.run.__code__.co_filename == f"<fused:{fn.name}>"


def test_compiled_executor_shares_programs_across_instances():
    """compile-once/run-many: two executors over one module reuse the
    compiled program, and repeated runs agree with themselves."""
    w = POLYBENCH[0]
    module, _ = measure.build(w, "supervec+v", use_cache=False)
    for backend in JIT_BACKENDS:
        r1 = measure.execute(module, w, backend=backend)
        r2 = measure.execute(module, w, backend=backend)
        assert r1.cycles == r2.cycles
        assert r1.checksum == r2.checksum


# -- harness-level behavior --------------------------------------------------


def test_unknown_backend_rejected():
    w = POLYBENCH[0]
    module, _ = measure.build(w, "O0", use_cache=True)
    with pytest.raises(ValueError, match="unknown backend"):
        measure.execute(module, w, backend="tracing")
    with pytest.raises(ValueError, match="unknown backend"):
        measure.set_default_backend("tracing")


def test_backend_registry_complete():
    assert BACKENDS["reference"] is Interpreter
    assert BACKENDS["compiled"] is CompiledExecutor
    assert BACKENDS["fused"] is FusedExecutor
    assert BACKENDS["array"] is ArrayExecutor


def test_reference_cache_hit_and_clear():
    measure.clear_reference_cache()
    w = POLYBENCH[0]
    measure.verified_run(w, "O3")
    assert len(measure._REFERENCE_CACHE) == 1
    measure.verified_run(w, "supervec")  # same workload: reference reused
    assert len(measure._REFERENCE_CACHE) == 1
    measure.clear_reference_cache()
    assert len(measure._REFERENCE_CACHE) == 0
    assert len(measure._RUN_CACHE) == 0


def test_reference_cache_keyed_by_input_data():
    """s258-biased variants share a name but not input data; the cached
    O0 reference must not leak across them."""
    measure.clear_reference_cache()
    a = tsvc.s258_biased(positive_fraction=0.995)
    b = tsvc.s258_biased(positive_fraction=0.0)
    measure.verified_run(a, "supervec+v")
    measure.verified_run(b, "supervec+v")
    assert len(measure._REFERENCE_CACHE) == 2


def test_lru_cache_evicts_least_recently_used():
    cache = measure._LRUCache(cap=2)
    cache["a"] = 1
    cache["b"] = 2
    assert cache.get("a") == 1  # touch a -> b is now least recent
    cache["c"] = 3
    assert len(cache) == 2
    assert cache.get("b") is None, "LRU entry must be evicted at the cap"
    assert cache.get("a") == 1 and cache.get("c") == 3
    cache.clear()
    assert len(cache) == 0


def test_lru_cache_cap_zero_disables_storage():
    cache = measure._LRUCache(cap=0)
    cache["a"] = 1
    assert len(cache) == 0 and cache.get("a") is None


def test_cache_cap_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_CAP", "7")
    assert measure._cache_cap() == 7
    monkeypatch.setenv("REPRO_CACHE_CAP", "not-a-number")
    assert measure._cache_cap() == 256
    monkeypatch.delenv("REPRO_CACHE_CAP")
    assert measure._cache_cap() == 256


def test_externals_bypass_run_cache():
    """Workloads with opaque external callables must never serve memoized
    results (the callable cannot be fingerprinted)."""
    calls = []

    def ext(interp, mem, args):
        calls.append(1)
        return 1.0

    w = measure.Workload(
        name="ext-cache-probe",
        source=(
            "extern double cold_func(void);\n"
            "float kernel() { return cold_func(); }"
        ),
        args=[],
        externals={"cold_func": ext},
    )
    measure.clear_reference_cache()
    measure.run_workload(w, "O0", backend="compiled")
    measure.run_workload(w, "O0", backend="compiled")
    assert len(calls) == 2


# -- step limit --------------------------------------------------------------


@pytest.mark.parametrize(
    "executor_cls",
    [CompiledExecutor, FusedExecutor, ArrayExecutor],
    ids=["compiled", "fused", "array"],
)
def test_jit_step_limit(executor_cls):
    """A runaway loop is bounded by the same max_steps knob."""
    from repro.frontend import compile_c

    src = """
    float kernel(float* X, int n) {
        float s = 0.0;
        for (int i = 0; i < n; i = i) {  /* i never advances */
            s = s + X[0];
        }
        return s;
    }
    """
    module = compile_c(src, name="runaway")
    ex = executor_cls(module, max_steps=100)
    base = ex.memory.alloc(4)
    with pytest.raises(StepLimitExceeded):
        ex.run(module.functions["kernel"], [base, 10])


# -- counters satellite ------------------------------------------------------


def test_counters_as_dict_includes_by_opcode():
    w = POLYBENCH[0]
    res = measure.run_workload(w, "O0", backend="reference", use_cache=False)
    d = res.counters.as_dict()
    assert "by_opcode" in d
    assert d["by_opcode"] == dict(res.counters.by_opcode)
    assert sum(d["by_opcode"].values()) == d["instructions"]
