"""Tests for the SLP vectorizer and its three versioning modes."""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import verify_function
from repro.vectorizer import VectorizeConfig, vectorize_function

MAY_ALIAS = """
void f(double *a, double *b, double *c, int n) {
  for (int i = 0; i < n; i++) c[i] = a[i] * b[i] + 1.0;
}
"""

RESTRICT = """
void f(double * restrict a, double * restrict b, double * restrict c, int n) {
  for (int i = 0; i < n; i++) c[i] = a[i] * b[i] + 1.0;
}
"""

S281_LIKE = """
const int LEN = 32;
void f(double *a, double *b, double *c, int n) {
  for (int i = 0; i < n; i++) {
    double x = a[LEN-i-1] + b[i] * c[i];
    a[i] = x - 1.0;
    b[i] = x;
  }
}
"""

STRAIGHTLINE = """
void f(double *x, double *y) {
  y[0] = x[0] + 1.0;
  y[1] = x[1] + 1.0;
  y[2] = x[2] + 1.0;
  y[3] = x[3] + 1.0;
}
"""

DOT = """
double f(double * restrict a, double * restrict b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) s += a[i] * b[i];
  return s;
}
"""


def vec(src, mode="fine", fn="f", **kw):
    m = compile_c(src)
    stats = vectorize_function(m[fn], VectorizeConfig(mode=mode, **kw))
    verify_function(m[fn])
    return m, stats


def run_three_arrays(m, n=16, overlap=False, fn="f", seed_vals=None):
    interp = Interpreter(m)
    if overlap:
        base = interp.memory.alloc(64)
        a, b, c = base, base + 3, base + 7
        interp.memory.write_array(base, [float(i % 9 + 1) for i in range(64)])
    else:
        a = interp.memory.alloc(32)
        b = interp.memory.alloc(32)
        c = interp.memory.alloc(32)
        interp.memory.write_array(a, seed_vals or [float(i) for i in range(32)])
        interp.memory.write_array(b, [2.0] * 32)
        interp.memory.write_array(c, [3.0] * 32)
    res = interp.run(m[fn], [a, b, c, n])
    probe = interp.memory.read_array(a, 40 if overlap else 32)
    return probe, res


class TestModes:
    def test_none_rejects_may_alias(self):
        _, stats = vec(MAY_ALIAS, mode="none")
        assert stats.trees == 0 and stats.rejected_infeasible > 0

    def test_loop_vectorizes_may_alias_with_hoisted_checks(self):
        m, stats = vec(MAY_ALIAS, mode="loop")
        assert stats.trees == 1 and stats.plans_materialized == 1

    def test_fine_vectorizes_may_alias(self):
        _, stats = vec(MAY_ALIAS, mode="fine")
        assert stats.trees == 1

    def test_all_modes_vectorize_restrict(self):
        for mode in ("none", "loop", "fine"):
            _, stats = vec(RESTRICT, mode=mode)
            assert stats.trees == 1, mode
            assert stats.plans_materialized == 0, mode

    def test_only_fine_handles_loop_variant_conflict(self):
        """The s281 story: loop versioning cannot rule out an in-place
        reversed read; fine-grained versioning checks per iteration."""
        _, s_none = vec(S281_LIKE, mode="none")
        _, s_loop = vec(S281_LIKE, mode="loop")
        _, s_fine = vec(S281_LIKE, mode="fine")
        assert s_none.trees == 0
        assert s_loop.trees == 0
        assert s_fine.trees >= 1

    def test_straightline_slp(self):
        """Non-loop SLP: the flexibility loop versioning lacks."""
        for mode in ("loop", "fine"):
            m, stats = vec(STRAIGHTLINE, mode=mode, unroll=False)
            assert stats.trees == 1, mode


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["loop", "fine"])
    @pytest.mark.parametrize("overlap", [False, True])
    @pytest.mark.parametrize("n", [0, 3, 16, 17])
    def test_may_alias_kernel(self, mode, overlap, n):
        m_ref = compile_c(MAY_ALIAS)
        m_vec, _ = vec(MAY_ALIAS, mode=mode)
        r1, _ = run_three_arrays(m_ref, n=n, overlap=overlap)
        r2, _ = run_three_arrays(m_vec, n=n, overlap=overlap)
        assert r1 == r2

    @pytest.mark.parametrize("n", [0, 4, 15, 24])
    def test_s281_like(self, n):
        m_ref = compile_c(S281_LIKE)
        m_vec, _ = vec(S281_LIKE, mode="fine")

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(32)
            b = interp.memory.alloc(32)
            c = interp.memory.alloc(32)
            interp.memory.write_array(a, [float(i) for i in range(32)])
            interp.memory.write_array(b, [0.5] * 32)
            interp.memory.write_array(c, [2.0] * 32)
            interp.run(m["f"], [a, b, c, n])
            return interp.memory.read_array(a, 32), interp.memory.read_array(b, 32)

        assert run(m_ref) == run(m_vec)

    def test_straightline_semantics(self):
        m_ref = compile_c(STRAIGHTLINE)
        m_vec, _ = vec(STRAIGHTLINE, mode="fine", unroll=False)
        for overlap in (False, True):
            def run(m):
                interp = Interpreter(m)
                if overlap:
                    x = interp.memory.alloc(8)
                    y = x + 2
                else:
                    x = interp.memory.alloc(4)
                    y = interp.memory.alloc(4)
                interp.memory.write_array(x, [1.0, 2.0, 3.0, 4.0] + ([0.0] * 4 if overlap else []))
                interp.run(m["f"], [x, y])
                return interp.memory.read_array(x, 8 if overlap else 4)
            assert run(m_ref) == run(m_vec), f"overlap={overlap}"


class TestSpeedup:
    def test_restrict_kernel_speedup(self):
        m_ref = compile_c(RESTRICT)
        m_vec, _ = vec(RESTRICT, mode="fine")
        _, r1 = run_three_arrays(m_ref, n=16)
        _, r2 = run_three_arrays(m_vec, n=16)
        assert r2.cycles < r1.cycles

    def test_versioned_kernel_speedup_when_disjoint(self):
        m_ref = compile_c(MAY_ALIAS)
        m_vec, _ = vec(MAY_ALIAS, mode="fine")
        _, r1 = run_three_arrays(m_ref, n=16)
        _, r2 = run_three_arrays(m_vec, n=16)
        assert r2.cycles < r1.cycles
        assert r2.counters.checks > 0

    def test_benign_overlap_still_vectorizes(self):
        """a/b/c offset so groups never self-conflict: the fine-grained
        checks pass and the vector path runs, correctly."""
        m_ref = compile_c(MAY_ALIAS)
        m_vec, _ = vec(MAY_ALIAS, mode="fine")
        p1, r1 = run_three_arrays(m_ref, n=16, overlap=True)
        p2, r2 = run_three_arrays(m_vec, n=16, overlap=True)
        assert p1 == p2
        assert r2.counters.vector_ops > 0

    def test_fallback_when_truly_conflicting(self):
        """c = a+1: the store into c[i] feeds the load a[i+1] within one
        vector group, so the checks fail and the scalar clone runs."""
        m_ref = compile_c(MAY_ALIAS)
        m_vec, _ = vec(MAY_ALIAS, mode="fine")

        def run(m):
            interp = Interpreter(m)
            base = interp.memory.alloc(64)
            a, b, c = base, base + 40, base + 1
            interp.memory.write_array(base, [float(i % 7 + 1) for i in range(64)])
            res = interp.run(m["f"], [a, b, c, 16])
            return interp.memory.read_array(base, 40), res

        p1, r1 = run(m_ref)
        p2, r2 = run(m_vec)
        assert p1 == p2
        assert r2.counters.vector_ops == 0  # vector path never taken


class TestReductions:
    def test_dot_product_vectorized(self):
        m, stats = vec(DOT, mode="fine")
        assert stats.reductions == 1

    @pytest.mark.parametrize("n", [0, 1, 4, 9, 16])
    def test_dot_product_correct(self, n):
        m_ref = compile_c(DOT)
        m_vec, _ = vec(DOT, mode="fine")

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(16)
            b = interp.memory.alloc(16)
            interp.memory.write_array(a, [float(i + 1) for i in range(16)])
            interp.memory.write_array(b, [0.25 * i for i in range(16)])
            return interp.run(m["f"], [a, b, n])

        r1, r2 = run(m_ref), run(m_vec)
        assert r1.return_value == pytest.approx(r2.return_value)

    def test_dot_product_faster(self):
        m_ref = compile_c(DOT)
        m_vec, _ = vec(DOT, mode="fine")

        def cycles(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(64)
            b = interp.memory.alloc(64)
            interp.memory.write_array(a, [1.0] * 64)
            interp.memory.write_array(b, [2.0] * 64)
            return interp.run(m["f"], [a, b, 64]).cycles

        assert cycles(m_vec) < cycles(m_ref)

    def test_max_reduction(self):
        src = """
        double f(double * restrict a, int n) {
          double m = a[0];
          for (int i = 0; i < n; i++) m = max(m, a[i]);
          return m;
        }
        """
        m_ref = compile_c(src)
        m_vec, stats = vec(src, mode="fine")

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(16)
            interp.memory.write_array(a, [3.0, -1.0, 7.5, 2.0, 7.4, 0.0, 1.0, 2.0,
                                          3.0, 4.0, 5.0, 6.0, 6.9, 6.0, 5.0, 4.0])
            return interp.run(m["f"], [a, 16]).return_value

        assert run(m_ref) == run(m_vec) == 7.5


class TestMisc:
    def test_reversed_load_pack(self):
        src = """
        void f(double * restrict a, double * restrict b, int n) {
          for (int i = 0; i < n; i++) b[i] = a[31-i];
        }
        """
        m_ref = compile_c(src)
        m_vec, stats = vec(src, mode="fine")
        assert stats.trees == 1

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(32)
            b = interp.memory.alloc(32)
            interp.memory.write_array(a, [float(i) for i in range(32)])
            interp.run(m["f"], [a, b, 16])
            return interp.memory.read_array(b, 16)

        assert run(m_ref) == run(m_vec)

    def test_strided_access_falls_back_to_gather(self):
        src = """
        void f(double * restrict a, double * restrict b, int n) {
          for (int i = 0; i < n; i++) b[i] = a[2*i] + 1.0;
        }
        """
        m_ref = compile_c(src)
        m_vec, stats = vec(src, mode="fine")
        verify_function(m_vec["f"])

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(40)
            b = interp.memory.alloc(20)
            interp.memory.write_array(a, [float(i) for i in range(40)])
            interp.run(m["f"], [a, b, 12])
            return interp.memory.read_array(b, 12)

        assert run(m_ref) == run(m_vec)

    def test_unconditional_chain_never_vectorized(self):
        src = """
        void f(double *a, int n) {
          for (int i = 4; i < n; i++) a[i] = a[i-1] * 0.5;
        }
        """
        for mode in ("none", "loop", "fine"):
            m, stats = vec(src, mode=mode)
            assert stats.trees == 0, mode
            # and it still runs correctly
            interp = Interpreter(m)
            a = interp.memory.alloc(16)
            interp.memory.write_array(a, [256.0] * 16)
            interp.run(m["f"], [a, 12])
            assert interp.memory.read_array(a, 6)[4:6] == [128.0, 64.0]

    def test_cost_gate_can_be_disabled(self):
        m, stats = vec(S281_LIKE, mode="fine", cost_gate=False)
        assert stats.rejected_cost == 0
