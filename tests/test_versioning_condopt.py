"""Tests for condition optimizations (§IV-A): RCE, coalescing, promotion."""

import pytest

from repro.analysis import Affine, IntersectCond, PredCond, SymRange
from repro.analysis.promote import promote_intersect
from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import INT, PTR, Argument, Function, IRBuilder, Loop, Module, const_int, verify_function
from repro.versioning import (
    VersioningFramework,
    coalesce_conditions,
    eliminate_redundant_conditions,
)
from repro.versioning.condopt import promote_plan


def make_args():
    m = Module("t")
    fn = m.add_function(Function("f", [Argument("a", PTR), Argument("b", PTR)]))
    return fn.args


def rng(base, lo, hi):
    return SymRange(base, Affine.constant(lo), Affine.constant(hi))


class TestRCE:
    def test_shifted_pair_eliminated(self):
        """The paper's example: [a,a+10) vs [b,b+2) is equivalent to
        [a+100,a+110) vs [b+100,b+102)."""
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 10), rng(b, 0, 2))
        c2 = IntersectCond(rng(a, 100, 110), rng(b, 100, 102))
        out = eliminate_redundant_conditions([c1, c2])
        assert out == [c1]

    def test_swapped_ranges_eliminated(self):
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 4), rng(b, 0, 4))
        c2 = IntersectCond(rng(b, 5, 9), rng(a, 5, 9))
        out = eliminate_redundant_conditions([c1, c2])
        assert len(out) == 1

    def test_uneven_shift_not_eliminated(self):
        """offset undefined when the bounds shift by different amounts."""
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 10), rng(b, 0, 2))
        c2 = IntersectCond(rng(a, 100, 120), rng(b, 100, 102))  # a grew
        out = eliminate_redundant_conditions([c1, c2])
        assert len(out) == 2

    def test_mismatched_delta_not_eliminated(self):
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 10), rng(b, 0, 2))
        c2 = IntersectCond(rng(a, 100, 110), rng(b, 50, 52))
        out = eliminate_redundant_conditions([c1, c2])
        assert len(out) == 2

    def test_different_bases_kept(self):
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 4), rng(b, 0, 4))
        c2 = IntersectCond(rng(b, 0, 4), rng(b, 8, 12))
        out = eliminate_redundant_conditions([c1, c2])
        assert len(out) == 2

    def test_non_intersect_conditions_deduped_only(self):
        from repro.ir import Predicate, Cmp, const_int as ci

        a, b = make_args()
        c = Cmp("ne", ci(0), ci(1))
        p1 = PredCond(Predicate.of(c))
        p2 = PredCond(Predicate.of(c))
        out = eliminate_redundant_conditions([p1, p2])
        assert out == [p1]


class TestCoalescing:
    def test_paper_example(self):
        """intersects([a,a+10),[b,b+10)) + intersects([a+20,a+30),[b+40,b+50))
        -> intersects([a,a+30),[b,b+50))."""
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 10), rng(b, 0, 10))
        c2 = IntersectCond(rng(a, 20, 30), rng(b, 40, 50))
        out = coalesce_conditions([c1, c2])
        assert len(out) == 1
        merged = out[0]
        assert merged.a.lo.const == 0 and merged.a.hi.const == 30
        assert merged.b.lo.const == 0 and merged.b.hi.const == 50

    def test_hull_conservative(self):
        """The hull passing implies both originals pass (soundness)."""
        a, b = make_args()
        c1 = IntersectCond(rng(a, 0, 10), rng(b, 0, 10))
        c2 = IntersectCond(rng(a, 20, 30), rng(b, 40, 50))
        (merged,) = coalesce_conditions([c1, c2])

        def overlaps(c, abase, bbase):
            # concrete evaluation of the range overlap with numeric bases
            alo, ahi = abase + c.a.lo.const, abase + c.a.hi.const
            blo, bhi = bbase + c.b.lo.const, bbase + c.b.hi.const
            return alo < bhi and blo < ahi

        for abase in range(0, 60, 7):
            for bbase in range(0, 60, 7):
                if not overlaps(merged, abase, bbase):
                    assert not overlaps(c1, abase, bbase)
                    assert not overlaps(c2, abase, bbase)

    def test_symbolic_delta_not_coalesced(self):
        m = Module("t")
        fn = m.add_function(
            Function("f", [Argument("a", PTR), Argument("b", PTR), Argument("k", INT)])
        )
        a, b, k = fn.args
        c1 = IntersectCond(rng(a, 0, 4), rng(b, 0, 4))
        c2 = IntersectCond(
            SymRange(a, Affine.symbol(k), Affine.symbol(k).add(Affine.constant(4))),
            rng(b, 0, 4),
        )
        out = coalesce_conditions([c1, c2])
        assert len(out) == 2


def loop_with_ranges():
    """for i: ... with accesses a[i] and b[i] -> loop-variant ranges."""
    src = """
    void f(double *a, double *b, int n) {
      for (int i = 0; i < n; i++) a[i] = b[i] + 1.0;
    }
    """
    m = compile_c(src)
    fn = m["f"]
    loop = [it for it in fn.items if isinstance(it, Loop)][0]
    return m, fn, loop


class TestPromotion:
    def test_precise_promotion_cancels_shared_iv(self):
        m, fn, loop = loop_with_ranges()
        load = [i for i in loop.instructions() if i.opcode == "load"][0]
        store = [i for i in loop.instructions() if i.opcode == "store"][0]
        from repro.analysis.depgraph import range_of

        ra, rb = range_of(store), range_of(load)
        cond = IntersectCond(ra, rb)
        promoted = promote_intersect(cond, loop)
        assert promoted is not None
        from repro.analysis import is_invariant

        for bound in (promoted.a.lo, promoted.a.hi, promoted.b.lo, promoted.b.hi):
            assert is_invariant(bound, loop)

    def test_imprecise_promotion_uses_trip_count(self):
        """a[i] vs b[2*i]: different steps, different bases -> widen by N."""
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) a[i] = b[2*i] + 1.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        loop = [it for it in fn.items if isinstance(it, Loop)][0]
        load = [i for i in loop.instructions() if i.opcode == "load"][0]
        store = [i for i in loop.instructions() if i.opcode == "store"][0]
        from repro.analysis.depgraph import range_of

        cond = IntersectCond(range_of(store), range_of(load))
        promoted = promote_intersect(cond, loop)
        assert promoted is not None
        # b side widened by 2*(N-1): hi contains the trip count symbol
        n_arg = fn.args[2]
        assert promoted.b.hi.coeff(n_arg) == 2

    def test_same_base_imprecise_rejected(self):
        """In-place update: a[i] vs a[2*i] must NOT be widened (paper rule)."""
        src = """
        void f(double *a, int n) {
          for (int i = 1; i < n; i++) a[i] = a[2*i] + 1.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        loop = [it for it in fn.items if isinstance(it, Loop)][0]
        load = [i for i in loop.instructions() if i.opcode == "load"][0]
        store = [i for i in loop.instructions() if i.opcode == "store"][0]
        from repro.analysis.depgraph import range_of

        cond = IntersectCond(range_of(store), range_of(load))
        assert promote_intersect(cond, loop) is None

    def test_plan_promotion_hoists_check_out_of_loop(self):
        """A versioned in-loop pack gets its check re-anchored before the
        loop, so the dynamic check count is O(1), not O(n)."""
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) {
            a[i] = 1.0;
            b[i] = 2.0;
          }
        }
        """

        def build_and_run(optimize):
            m = compile_c(src)
            fn = m["f"]
            loop = [it for it in fn.items if isinstance(it, Loop)][0]
            stores = [i for i in loop.instructions() if i.opcode == "store"]
            vf = VersioningFramework(fn)
            plan = vf.infer_for_items(stores)
            assert plan is not None and not plan.is_empty()
            vf.materialize([plan], optimize=optimize)
            verify_function(fn)
            interp = Interpreter(m)
            a = interp.memory.alloc(32)
            b = interp.memory.alloc(32)
            res = interp.run(fn, [a, b, 32])
            return res.counters.checks, interp.memory.read_array(a, 32), interp.memory.read_array(b, 32)

        checks_opt, a_opt, b_opt = build_and_run(True)
        checks_raw, a_raw, b_raw = build_and_run(False)
        assert a_opt == a_raw and b_opt == b_raw
        assert checks_opt < checks_raw  # hoisted: once vs per-iteration
        assert checks_opt <= 2

    def test_promoted_check_still_correct_under_overlap(self):
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) {
            a[i] = a[i] + 1.0;
            b[i] = b[i] + 10.0;
          }
        }
        """

        def run(module, overlap):
            interp = Interpreter(module)
            if overlap:
                a = interp.memory.alloc(16)
                b = a + 3
                interp.memory.write_array(a, [float(i) for i in range(16)])
            else:
                a = interp.memory.alloc(8)
                b = interp.memory.alloc(8)
                interp.memory.write_array(a, [float(i) for i in range(8)])
                interp.memory.write_array(b, [float(i) for i in range(8)])
            interp.run(module["f"], [a, b, 8])
            return interp.memory.read_array(a, 11 if overlap else 8)

        for overlap in (False, True):
            m_ref = compile_c(src)
            m_ver = compile_c(src)
            fn = m_ver["f"]
            loop = [it for it in fn.items if isinstance(it, Loop)][0]
            stores = [i for i in loop.instructions() if i.opcode == "store"]
            vf = VersioningFramework(fn)
            plan = vf.infer_for_items(stores)
            vf.materialize([plan], optimize=True)
            assert run(m_ref, overlap) == run(m_ver, overlap)
