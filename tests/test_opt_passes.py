"""Tests for DCE, simplify, GVN, LICM, and the loop unroller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import Loop, verify_function
from repro.opt import (
    run_dce,
    run_gvn,
    run_licm,
    run_simplify,
    unroll_innermost_loops,
    unroll_loop,
)


def compiled(src, name="f"):
    m = compile_c(src)
    return m, m[name]


def count_ops(fn, opcode):
    return sum(1 for i in fn.instructions() if i.opcode == opcode)


class TestDCE:
    def test_removes_unused_arith(self):
        m, fn = compiled("double f(double x) { double y = x * 2.0; return x; }")
        removed = run_dce(fn)
        assert removed >= 1
        verify_function(fn)
        assert count_ops(fn, "bin") == 0

    def test_keeps_stores(self):
        m, fn = compiled("void f(double *a) { a[0] = 1.0; }")
        run_dce(fn)
        assert count_ops(fn, "store") == 1

    def test_keeps_return_chain(self):
        m, fn = compiled("double f(double x) { return x * 2.0 + 1.0; }")
        assert run_dce(fn) == 0
        assert count_ops(fn, "bin") == 2

    def test_removes_dead_loop(self):
        m, fn = compiled(
            """
            double f(double x, int n) {
              double s = 0.0;
              for (int i = 0; i < n; i++) { s = s + 1.0; }
              return x;
            }
            """
        )
        run_dce(fn)
        verify_function(fn)
        assert not fn.loops()

    def test_keeps_loop_with_store(self):
        m, fn = compiled(
            "void f(double *a, int n) { for (int i = 0; i < n; i++) a[i] = 1.0; }"
        )
        run_dce(fn)
        assert len(fn.loops()) == 1

    def test_transitive_chains(self):
        m, fn = compiled(
            "double f(double x) { double a = x + 1.0; double b = a * 2.0; double c = b - a; return x; }"
        )
        run_dce(fn)
        assert count_ops(fn, "bin") == 0


class TestSimplify:
    def test_constant_folding(self):
        m, fn = compiled("double f() { return 2.0 * 3.0 + 4.0; }")
        run_simplify(fn)
        verify_function(fn)
        from repro.ir.values import Constant

        assert isinstance(fn.return_value, Constant)
        assert fn.return_value.value == 10.0

    def test_identities(self):
        m, fn = compiled("double f(double x) { return x * 1.0 + 0.0; }")
        run_simplify(fn)
        run_dce(fn)
        assert fn.return_value is fn.args[0]

    def test_cmp_folding(self):
        m, fn = compiled("double f(double x) { double r = 0.0; if (1 < 2) { r = x; } return r; }")
        n = run_simplify(fn)
        assert n >= 1
        verify_function(fn)

    def test_select_const_cond(self):
        m, fn = compiled("double f(double x) { return 1 > 0 ? x : 0.0; }")
        run_simplify(fn)
        run_dce(fn)
        assert fn.return_value is fn.args[0]

    def test_semantics_preserved(self):
        src = "double f(double x) { return (x + 0.0) * 1.0 + 2.0 * 3.0 - 0.0 / 4.0; }"
        m1, f1 = compiled(src)
        m2, f2 = compiled(src)
        run_simplify(f2)
        run_dce(f2)
        verify_function(f2)
        for x in (0.0, -2.5, 7.0):
            assert (
                Interpreter(m1).run(f1, [x]).return_value
                == Interpreter(m2).run(f2, [x]).return_value
            )


class TestGVN:
    def test_merges_duplicate_arith(self):
        m, fn = compiled("double f(double x, double y) { return (x + y) * (x + y); }")
        deleted = run_gvn(fn)
        assert deleted == 1
        verify_function(fn)

    def test_respects_predicates(self):
        """A guarded computation cannot serve an unguarded duplicate."""
        src = """
        double f(double x, double c) {
          double a = 0.0;
          if (c > 0.0) { a = x * 2.0; }
          double b = x * 2.0;
          return a + b;
        }
        """
        m, fn = compiled(src)
        deleted = run_gvn(fn)
        assert deleted == 0

    def test_load_merged_when_no_clobber(self):
        m, fn = compiled("double f(double *a) { return a[0] + a[0]; }")
        deleted = run_gvn(fn)
        assert deleted >= 1
        verify_function(fn)

    def test_load_not_merged_across_clobber(self):
        src = "double f(double *a, double *b) { double x = a[0]; b[0] = 9.0; return x + a[0]; }"
        m, fn = compiled(src)
        before = count_ops(fn, "load")
        run_gvn(fn)
        assert count_ops(fn, "load") == before

    def test_load_merged_across_noalias_clobber(self):
        src = "double f(double * restrict a, double * restrict b) { double x = a[0]; b[0] = 9.0; return x + a[0]; }"
        m, fn = compiled(src)
        run_gvn(fn)
        assert count_ops(fn, "load") == 1

    def test_gvn_semantics(self):
        src = "double f(double *a, double x) { return (x + a[0]) * (x + a[0]) - a[0]; }"
        m1, f1 = compiled(src)
        m2, f2 = compiled(src)
        run_gvn(f2)
        run_dce(f2)
        for init in (2.0, -1.0):
            i1, i2 = Interpreter(m1), Interpreter(m2)
            a1, a2 = i1.memory.alloc(1), i2.memory.alloc(1)
            i1.memory.store(a1, init)
            i2.memory.store(a2, init)
            assert i1.run(f1, [a1, 3.0]).return_value == i2.run(f2, [a2, 3.0]).return_value


class TestLICM:
    def test_hoists_invariant_arith(self):
        src = """
        void f(double *a, double x, int n) {
          for (int i = 0; i < n; i++) a[i] = x * 2.0;
        }
        """
        m, fn = compiled(src)
        hoisted = run_licm(fn)
        assert hoisted >= 1
        verify_function(fn)
        loop = fn.loops()[0]
        assert all(i.opcode != "bin" or i.op != "mul" for i in loop.instructions() if hasattr(i, "op"))

    def test_does_not_hoist_variant(self):
        src = "void f(double *a, int n) { for (int i = 0; i < n; i++) a[i] = i * 2.0; }"
        m, fn = compiled(src)
        loop = fn.loops()[0]
        before = len(loop.items)
        run_licm(fn)
        # the iv-dependent mul stays put
        assert any(
            getattr(i, "op", None) == "mul" for i in loop.instructions()
        )

    def test_load_not_hoisted_past_may_alias_store(self):
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) a[i] = b[0] + 1.0;
        }
        """
        m, fn = compiled(src)
        run_licm(fn)
        loop = fn.loops()[0]
        assert any(i.opcode == "load" for i in loop.instructions())

    def test_load_hoisted_with_restrict(self):
        src = """
        void f(double * restrict a, double * restrict b, int n) {
          for (int i = 0; i < n; i++) a[i] = b[0] + 1.0;
        }
        """
        m, fn = compiled(src)
        hoisted = run_licm(fn)
        loop = fn.loops()[0]
        assert all(i.opcode != "load" for i in loop.instructions())

    def test_licm_semantics(self):
        src = """
        double f(double *a, double x, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) { a[i] = x * 3.0; s += a[i]; }
          return s;
        }
        """
        m1, f1 = compiled(src)
        m2, f2 = compiled(src)
        run_licm(f2)
        verify_function(f2)
        for n in (0, 1, 5):
            i1, i2 = Interpreter(m1), Interpreter(m2)
            a1, a2 = i1.memory.alloc(8), i2.memory.alloc(8)
            r1 = i1.run(f1, [a1, 2.0, n]).return_value
            r2 = i2.run(f2, [a2, 2.0, n]).return_value
            assert r1 == r2
            assert i1.memory.read_array(a1, 8) == i2.memory.read_array(a2, 8)


UNROLL_SRC = """
double f(double *a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * 2.0;
    s += a[i];
  }
  return s;
}
"""


class TestUnroll:
    def _run(self, module, n, size=16):
        interp = Interpreter(module)
        a = interp.memory.alloc(size)
        interp.memory.write_array(a, [float(i + 1) for i in range(size)])
        res = interp.run(module["f"], [a, n])
        return res.return_value, interp.memory.read_array(a, size), res

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 16])
    @pytest.mark.parametrize("factor", [2, 4])
    def test_unroll_semantics(self, n, factor):
        m1, f1 = compiled(UNROLL_SRC)
        m2, f2 = compiled(UNROLL_SRC)
        loop = f2.loops()[0]
        assert unroll_loop(f2, loop, factor)
        verify_function(f2)
        r1 = self._run(m1, n)
        r2 = self._run(m2, n)
        assert r1[0] == pytest.approx(r2[0])
        assert r1[1] == r2[1]

    def test_fewer_backedges_after_unroll(self):
        m1, f1 = compiled(UNROLL_SRC)
        m2, f2 = compiled(UNROLL_SRC)
        assert unroll_innermost_loops(f2, 4) == 1
        verify_function(f2)
        _, _, res1 = self._run(m1, 16)
        _, _, res2 = self._run(m2, 16)
        assert res2.counters.backedges < res1.counters.backedges

    def test_nested_only_innermost(self):
        src = """
        void f(double *a, int n) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              a[i*8+j] = 1.0;
        }
        """
        m, fn = compiled(src)
        assert unroll_innermost_loops(fn, 2) == 1
        verify_function(fn)
        interp = Interpreter(m)
        a = interp.memory.alloc(64)
        interp.run(fn, [a, 8])
        assert interp.memory.read_array(a, 64) == [1.0] * 64

    def test_unknown_trip_count_rejected(self):
        src = """
        void f(double *a, int *stop) {
          int i = 0;
          while (stop[i] > 0) { a[i] = 1.0; i = i + 1; }
        }
        """
        m, fn = compiled(src)
        loop = fn.loops()[0]
        assert not unroll_loop(fn, loop, 4)

    def test_conditional_body_unrolls(self):
        src = """
        double f(double *a, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) {
            if (a[i] > 0.0) { s += a[i]; }
          }
          return s;
        }
        """
        m1, f1 = compiled(src)
        m2, f2 = compiled(src)
        assert unroll_innermost_loops(f2, 2) == 1
        verify_function(f2)

        def run(mod):
            interp = Interpreter(mod)
            a = interp.memory.alloc(8)
            interp.memory.write_array(a, [1.0, -2.0, 3.0, -4.0, 5.0, 6.0, -7.0, 8.0])
            return interp.run(mod["f"], [a, 7]).return_value

        assert run(m1) == run(m2)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(0, 12),
    factor=st.sampled_from([2, 3, 4]),
    data=st.lists(st.floats(-100, 100, allow_nan=False), min_size=12, max_size=12),
)
def test_unroll_property(n, factor, data):
    """Unrolling by any factor preserves results for any trip count."""
    m1, f1 = compiled(UNROLL_SRC)
    m2, f2 = compiled(UNROLL_SRC)
    assert unroll_loop(f2, f2.loops()[0], factor)
    i1, i2 = Interpreter(m1), Interpreter(m2)
    a1, a2 = i1.memory.alloc(12), i2.memory.alloc(12)
    i1.memory.write_array(a1, data)
    i2.memory.write_array(a2, data)
    r1 = i1.run(f1, [a1, n]).return_value
    r2 = i2.run(f2, [a2, n]).return_value
    assert r1 == pytest.approx(r2)
    assert i1.memory.read_array(a1, 12) == i2.memory.read_array(a2, 12)
