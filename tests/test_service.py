"""Tests for the compile service (repro.service).

Three layers, matching the subsystem's structure:

* **manifest** unit tests — the pass-pipeline fingerprint is sensitive
  to everything that changes what a level means, and verification
  refuses skew in provenance-severity order;
* **sharded store** unit tests — round trips, per-shard LRU budgets,
  shard-count pinning, manifest-gated loads;
* **daemon** integration tests — a real ``python -m repro.service
  serve`` subprocess answers the acceptance scenario: >= 64 concurrent
  mixed build/run requests bit-identical to in-process ``measure``
  results, duplicate in-flight requests coalesced onto exactly one
  build, and tampered manifests refused with a structured error.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.perf import diskcache, measure
from repro.perf.diskcache import FORMAT_VERSION
from repro.service import client as svc
from repro.service.manifest import (
    MANIFEST_VERSION,
    Manifest,
    ManifestMismatch,
    make_manifest,
    manifest_path,
    pipeline_fingerprint,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from repro.service.store import ShardedStore
from repro.diag.report import suite_workloads

LEVEL = "supervec+v"

SRC = "void k(double* restrict a) { for (int i = 0; i < 8; i++) a[i] = a[i] + 1.0; }"


def _counter(snap, name, **labels):
    """Sum of a counter's series matching ``labels`` in a snapshot."""
    for fam in snap.get("metrics", ()):
        if fam["name"] != name:
            continue
        return sum(
            s["value"]
            for s in fam["series"]
            if all(s["labels"].get(k) == v for k, v in labels.items())
        )
    return 0


# -- manifests ----------------------------------------------------------------


class TestPipelineFingerprint:
    def test_stable(self):
        assert pipeline_fingerprint(LEVEL) == pipeline_fingerprint(LEVEL)
        assert len(pipeline_fingerprint(LEVEL)) == 16

    def test_sensitive_to_level(self):
        fps = {pipeline_fingerprint(lv)
               for lv in ("O0", "O3-scalar", "O3", "supervec", "supervec+v")}
        assert len(fps) == 5

    def test_sensitive_to_knobs(self):
        base = pipeline_fingerprint(LEVEL)
        assert pipeline_fingerprint(LEVEL, honor_restrict=False) != base
        assert pipeline_fingerprint(LEVEL, vl=8) != base
        assert pipeline_fingerprint(LEVEL, rle=True) != base

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            pipeline_fingerprint("O9")


class TestManifest:
    KEY = "ab" * 32

    def _manifest(self, **over):
        m = make_manifest(self.KEY, SRC, "k", LEVEL, True, 4, False)
        return Manifest.from_dict({**m.to_dict(), **over}) if over else m

    def _verify(self, m):
        verify_manifest(m, key=self.KEY, source=SRC, entry="k",
                        level=LEVEL, honor_restrict=True, vl=4, rle=False)

    def test_roundtrip_verifies(self, tmp_path):
        m = self._manifest()
        self._verify(m)
        path = str(tmp_path / "a.manifest.json")
        write_manifest(path, m)
        loaded = read_manifest(path)
        assert loaded == m
        self._verify(loaded)

    def test_absent_or_corrupt_reads_none(self, tmp_path):
        assert read_manifest(str(tmp_path / "missing.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_manifest(str(bad)) is None

    def test_fingerprint_mismatch_refused(self):
        m = self._manifest(pipeline_fingerprint="0" * 16)
        with pytest.raises(ManifestMismatch) as ei:
            self._verify(m)
        assert ei.value.field == "pipeline_fingerprint"
        d = ei.value.details()
        assert d["key"] == self.KEY and d["actual"] == "0" * 16

    def test_format_version_mismatch_refused(self):
        with pytest.raises(ManifestMismatch) as ei:
            self._verify(self._manifest(artifact_format=FORMAT_VERSION + 7))
        assert ei.value.field == "artifact_format"

    def test_versions_checked_before_fingerprint(self):
        # an old-format artifact with a stale pipeline too: the format
        # skew is the load-bearing refusal, and it must be named first
        m = self._manifest(artifact_format=FORMAT_VERSION + 1,
                           pipeline_fingerprint="0" * 16,
                           manifest_version=MANIFEST_VERSION + 1)
        with pytest.raises(ManifestMismatch) as ei:
            self._verify(m)
        assert ei.value.field == "manifest_version"

    def test_source_edit_refused(self):
        m = self._manifest()
        with pytest.raises(ManifestMismatch) as ei:
            verify_manifest(m, key=self.KEY, source=SRC + " ", entry="k",
                            level=LEVEL, honor_restrict=True, vl=4,
                            rle=False)
        assert ei.value.field == "source_sha256"


# -- sharded store ------------------------------------------------------------


def _keyed_manifest(key, source=SRC):
    return make_manifest(key, source, "k", LEVEL, True, 4, False)


def _get(store, key, source=SRC):
    return store.get(key, source=source, entry="k", level=LEVEL,
                     honor_restrict=True, vl=4, rle=False)


class TestShardedStore:
    def test_roundtrip_and_miss(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=4, cap_per_shard=8)
        key = "0" * 64
        assert _get(store, key) is None  # cold miss
        payload = {"ir": [1, 2, 3]}
        store.put(key, payload, {"n": 1}, _keyed_manifest(key))
        got = _get(store, key)
        assert got is not None
        module, stats, m = got
        assert module == payload and module is not payload  # fresh unpickle
        assert stats == {"n": 1}
        assert m.key == key
        assert store.entry_count() == 1

    def test_shard_routing_and_occupancy(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=4, cap_per_shard=8)
        keys = [f"{i:08x}" + "0" * 56 for i in range(8)]  # prefix routes
        for k in keys:
            store.put(k, None, None, _keyed_manifest(k))
        assert {store.shard_of(k) for k in keys} == {0, 1, 2, 3}
        rows = store.occupancy()
        assert len(rows) == 4
        assert sum(r["entries"] for r in rows) == 8
        assert all(r["bytes"] > 0 for r in rows)
        for k in keys:
            d = os.path.dirname(store._artifact_path(k))
            assert d.endswith(f"shard-{store.shard_of(k):02d}")

    def test_absent_manifest_is_a_miss(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2)
        key = "1" * 64
        store.put(key, None, None, _keyed_manifest(key))
        os.remove(manifest_path(store._artifact_path(key)))
        assert _get(store, key) is None

    def test_tampered_manifest_refused(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2)
        key = "2" * 64
        store.put(key, None, None, _keyed_manifest(key))
        mp = manifest_path(store._artifact_path(key))
        d = json.load(open(mp))
        d["pipeline_fingerprint"] = "0" * 16
        json.dump(d, open(mp, "w"))
        with pytest.raises(ManifestMismatch):
            _get(store, key)

    def test_corrupt_pickle_dropped_and_missed(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2)
        key = "3" * 64
        store.put(key, None, None, _keyed_manifest(key))
        path = store._artifact_path(key)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert _get(store, key) is None
        assert not os.path.exists(path)

    def test_per_shard_lru_budget(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=1, cap_per_shard=2)
        for i in range(5):
            k = f"{i:064x}"
            store.put(k, None, None, _keyed_manifest(k))
            time.sleep(0.01)  # distinct mtimes for a deterministic LRU
        assert store.entry_count() <= 2
        # evicted artifacts take their manifests with them
        shard = store._shard_dir(0)
        pkls = {n[:-4] for n in os.listdir(shard) if n.endswith(".pkl")}
        mans = {n[:-len(".manifest.json")] for n in os.listdir(shard)
                if n.endswith(".manifest.json")}
        assert pkls == mans
        # survivors are the most recently stored
        assert f"{4:064x}" in pkls

    def test_shard_count_is_pinned(self, tmp_path):
        root = str(tmp_path / "s")
        ShardedStore(root, shards=4)
        ShardedStore(root, shards=4)  # same count reopens fine
        with pytest.raises(ValueError, match="refusing"):
            ShardedStore(root, shards=8)

    def test_bad_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStore(str(tmp_path / "s"), shards=0)


# -- daemon integration -------------------------------------------------------


def _unique_source(tag: str) -> str:
    """A tiny kernel whose source (hence cache key) embeds ``tag``."""
    n = 4 + (hash(tag) % 4)
    return (f"void k(double* restrict a) {{ /* {tag} */ "
            f"for (int i = 0; i < {n}; i++) a[i] = a[i] * 2.0 + 1.0; }}")


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One real service subprocess shared by the integration tests."""
    root = tmp_path_factory.mktemp("service")
    addr_file = root / "addr"
    store = root / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))
    env.pop("REPRO_SERVICE_ADDR", None)
    env.pop("REPRO_CACHE_DIR", None)
    log = open(root / "daemon.log", "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", "0", "--workers", "2", "--shards", "4",
         "--store", str(store), "--addr-file", str(addr_file)],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.time() + 60
    while not addr_file.exists():
        if proc.poll() is not None:
            log.close()
            raise RuntimeError(
                "daemon died during startup:\n"
                + (root / "daemon.log").read_text())
        if time.time() > deadline:
            proc.kill()
            raise RuntimeError("daemon did not write its addr file")
        time.sleep(0.05)
    addr = addr_file.read_text().strip()
    yield {"addr": addr, "store": str(store)}
    try:
        svc.shutdown(addr)
        proc.wait(timeout=15)
    except Exception:
        proc.kill()
        proc.wait(timeout=15)
    log.close()


class TestDaemonBasics:
    def test_ping(self, daemon):
        resp = svc.ping(daemon["addr"])
        assert resp["ok"] and resp["protocol"] >= 1 and resp["version"]

    def test_status_shape(self, daemon):
        st = svc.fetch_status(daemon["addr"])
        assert st["workers"] == 2
        assert st["store"]["shards"] == 4
        assert len(st["store"]["per_shard"]) == 4
        assert st["addr"] == daemon["addr"]

    def test_unknown_op_is_structured(self, daemon):
        with pytest.raises(svc.ServiceError) as ei:
            svc.request(daemon["addr"],
                        {"op": "frobnicate", "id": 1, "params": {}})
        assert ei.value.code == "unknown-op"

    def test_bad_params_are_structured(self, daemon):
        with pytest.raises(svc.ServiceError) as ei:
            svc.request(daemon["addr"],
                        {"op": "build", "id": 2, "params": {}})
        assert ei.value.code == "bad-request"

    def test_parse_error_is_structured(self, daemon):
        with pytest.raises(svc.ServiceError) as ei:
            svc.request(daemon["addr"], {
                "op": "build", "id": 3,
                "params": {"source": "void k(double* a) { syntax error"},
            })
        assert ei.value.code in ("build-failed", "bad-request")


class TestDaemonBuild:
    def test_build_then_manifest_verified_hit(self, daemon):
        source = _unique_source("build-hit")
        first = svc.remote_build(daemon["addr"], source, entry="k",
                                 level=LEVEL)
        assert first["origin"] == "built"
        key = diskcache.cache_key(source, "k", LEVEL, True, 4, False)
        assert first["key"] == key
        m = first["manifest"]
        assert m["pipeline_fingerprint"] == pipeline_fingerprint(LEVEL)
        assert m["artifact_format"] == FORMAT_VERSION
        assert m["key"] == key

        second = svc.remote_build(daemon["addr"], source, entry="k",
                                  level=LEVEL)
        assert second["origin"] == "store"  # manifest-verified load
        assert second["manifest"]["key"] == key
        # the shipped artifact is a real module: the entry is in there
        assert "k" in second["module"].functions
        assert second["module"] is not first["module"]

    def test_diag_op_streams_remarks(self, daemon):
        resp = svc.request(daemon["addr"], {
            "op": "diag", "id": 7,
            "params": {"source": _unique_source("diag"), "entry": "k",
                       "level": LEVEL},
        })
        assert resp["remarks"] and resp["passes"]
        assert any(p["pass"] for p in resp["passes"])

    def test_fuzz_op(self, daemon):
        resp = svc.remote_fuzz(daemon["addr"], seed=11)
        assert resp["fuzz_ok"] and resp["configs_run"] > 0


WORKLOADS = ["atax", "mvt", "gesummv", "trisolv"]
LEVELS = ["O3", "supervec+v"]


class TestAcceptance:
    """The ISSUE.md end-to-end scenario, in three asserts."""

    def test_64_concurrent_mixed_requests_bit_identical(self, daemon):
        expected = {}
        for name in WORKLOADS:
            w = suite_workloads("polybench", name)[0]
            for level in LEVELS:
                measure.clear_build_cache()
                module, stats = measure.build(w, level, use_cache=False)
                res = measure.execute(module, w, stats)
                expected[(name, level)] = (
                    res.cycles, res.counters.as_dict(), res.checksum)
        measure.clear_build_cache()

        combos = [(n, lv) for n in WORKLOADS for lv in LEVELS]
        sources = {n: suite_workloads("polybench", n)[0].source
                   for n in WORKLOADS}

        def one(i):
            name, level = combos[i % len(combos)]
            if i % 2 == 0:
                return ("run", name, level, svc.remote_run(
                    daemon["addr"],
                    {"suite": "polybench", "workload": name,
                     "level": level}))
            return ("build", name, level, svc.remote_build(
                daemon["addr"], sources[name],
                entry=name, level=level, want_artifact=False))

        with ThreadPoolExecutor(max_workers=32) as pool:
            results = list(pool.map(one, range(64)))
        assert len(results) == 64

        for kind, name, level, resp in results:
            assert resp["ok"], (kind, name, level, resp)
            if kind != "run":
                continue
            cycles, counters, checksum = expected[(name, level)]
            assert resp["cycles"] == cycles, (name, level)
            assert resp["counters"] == counters, (name, level)
            assert resp["checksum"] == checksum, (name, level)

    def test_duplicate_inflight_requests_build_once(self, daemon):
        source = _unique_source("single-flight")
        before = svc.fetch_metrics(daemon["addr"])

        def one(_):
            return svc.remote_build(daemon["addr"], source, entry="k",
                                    level=LEVEL, want_artifact=False)

        with ThreadPoolExecutor(max_workers=16) as pool:
            responses = list(pool.map(one, range(16)))
        after = svc.fetch_metrics(daemon["addr"])

        assert all(r["ok"] for r in responses)
        # exactly one response did the pipeline run; everything else was
        # coalesced onto it in flight or served from the store after it
        owners = [r for r in responses
                  if r["origin"] == "built" and not r.get("coalesced")]
        assert len(owners) == 1
        built_delta = (
            _counter(after, "repro_service_builds_total", origin="built")
            - _counter(before, "repro_service_builds_total",
                       origin="built"))
        assert built_delta == 1
        coalesced = [r for r in responses if r.get("coalesced")]
        sf_delta = (
            _counter(after, "repro_service_singleflight_total")
            - _counter(before, "repro_service_singleflight_total"))
        assert sf_delta == len(coalesced)

    def test_tampered_fingerprint_refused_structurally(self, daemon):
        source = _unique_source("tamper-fp")
        first = svc.remote_build(daemon["addr"], source, entry="k",
                                 level=LEVEL, want_artifact=False)
        key = first["key"]
        store = ShardedStore(daemon["store"], shards=4)
        mpath = manifest_path(store._artifact_path(key))
        d = json.load(open(mpath))
        d["pipeline_fingerprint"] = "0" * 16
        json.dump(d, open(mpath, "w"))

        with pytest.raises(svc.ServiceError) as ei:
            svc.remote_build(daemon["addr"], source, entry="k",
                             level=LEVEL, want_artifact=False)
        assert ei.value.code == "manifest-mismatch"
        assert ei.value.details["field"] == "pipeline_fingerprint"
        assert ei.value.details["key"] == key
        assert ei.value.details["actual"] == "0" * 16
        # the refusal is sticky — no silent rebuild papers over it
        with pytest.raises(svc.ServiceError):
            svc.remote_build(daemon["addr"], source, entry="k",
                             level=LEVEL, want_artifact=False)

    def test_stale_format_version_refused(self, daemon):
        source = _unique_source("tamper-fmt")
        first = svc.remote_build(daemon["addr"], source, entry="k",
                                 level=LEVEL, want_artifact=False)
        store = ShardedStore(daemon["store"], shards=4)
        mpath = manifest_path(store._artifact_path(first["key"]))
        d = json.load(open(mpath))
        d["artifact_format"] = 999
        json.dump(d, open(mpath, "w"))
        with pytest.raises(svc.ServiceError) as ei:
            svc.remote_build(daemon["addr"], source, entry="k",
                             level=LEVEL, want_artifact=False)
        assert ei.value.code == "manifest-mismatch"
        assert ei.value.details["field"] == "artifact_format"


# -- multiprocessing hammer (module-level bodies so they pickle) --------------


def _hammer_same(args):
    addr, _ = args
    resp = svc.remote_run(addr, {"suite": "polybench", "workload": "atax",
                                 "level": LEVEL})
    return resp["ok"], resp["cycles"], resp["checksum"], resp["origin"]


def _hammer_distinct(args):
    addr, i = args
    source = _unique_source(f"hammer-{i}")
    resp = svc.remote_build(addr, source, entry="k", level=LEVEL,
                            want_artifact=True)
    module = resp.pop("module")
    return resp["ok"], resp["key"], resp["origin"], "k" in module.functions


class TestConcurrentClients:
    def test_multiprocess_hammer(self, daemon):
        """Satellite: N processes x same key + N processes x distinct
        keys; no corrupt loads, one build per distinct key."""
        ctx = multiprocessing.get_context("fork")
        addr = daemon["addr"]
        with ctx.Pool(4) as pool:
            same = pool.map(_hammer_same, [(addr, i) for i in range(8)])
            distinct = pool.map(_hammer_distinct,
                                [(addr, i) for i in range(8)])

        assert all(ok for ok, *_ in same)
        # same key, eight loads: every execution bit-identical
        assert len({(cyc, chk) for _, cyc, chk, _ in same}) == 1

        assert all(ok for ok, *_ in distinct)
        keys = [k for _, k, _, _ in distinct]
        assert len(set(keys)) == 8  # really distinct cache keys
        assert all(valid for *_, valid in distinct)  # artifacts unpickle
        # each unique source is built exactly once, by whoever got there
        assert all(origin == "built" for _, _, origin, _ in distinct)

    def test_store_counts_hits_after_hammer(self, daemon):
        snap = svc.fetch_metrics(daemon["addr"])
        assert _counter(snap, "repro_service_store_requests_total",
                        outcome="hit") > 0
        assert _counter(snap, "repro_service_store_stores_total") > 0


# -- library + CLI integration ------------------------------------------------


class TestLibraryRouting:
    def test_measure_build_uses_service(self, daemon, monkeypatch):
        monkeypatch.setenv(svc.ADDR_ENV, daemon["addr"])
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        measure.clear_build_cache()
        w = suite_workloads("polybench", "atax")[0]
        before = telemetry.snapshot(include_spans=False)
        module, stats = measure.build(w, LEVEL, use_cache=True)
        after = telemetry.snapshot(include_spans=False)
        assert (_counter(after, "repro_build_total", source="service")
                - _counter(before, "repro_build_total", source="service")
                ) == 1
        # the remote artifact is a working build
        res = measure.execute(module, w, stats)
        assert res.cycles > 0
        measure.clear_build_cache()

    def test_unreachable_service_falls_back(self, monkeypatch):
        monkeypatch.setenv(svc.ADDR_ENV, "127.0.0.1:1")  # nothing there
        before = telemetry.snapshot(include_spans=False)
        assert svc.maybe_remote_build(SRC, "k", LEVEL, True, 4,
                                      False) is None
        after = telemetry.snapshot(include_spans=False)
        assert (_counter(after, "repro_service_client_requests_total",
                         outcome="unreachable")
                - _counter(before, "repro_service_client_requests_total",
                           outcome="unreachable")) == 1


class TestCLIsAgainstDaemon:
    def test_telemetry_dump_addr(self, daemon, capsys):
        from repro.telemetry.cli import main as tmain

        assert tmain(["dump", "--addr", daemon["addr"]]) == 0
        out = capsys.readouterr().out
        assert "repro_service_requests_total" in out

    def test_telemetry_dump_addr_prom(self, daemon, capsys):
        from repro.telemetry.cli import main as tmain

        assert tmain(["dump", "--addr", daemon["addr"], "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out

    def test_telemetry_dump_requires_input(self, capsys):
        from repro.telemetry.cli import main as tmain

        assert tmain(["dump"]) == 2

    def test_diag_report_from_service(self, daemon, capsys, tmp_path):
        from repro.diag.report import main as dmain

        out_file = tmp_path / "snap.json"
        assert dmain(["report", "--from-service", daemon["addr"],
                      "--metrics-out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "runtime telemetry" in out
        snap = json.load(open(out_file))
        assert _counter(snap, "repro_service_requests_total") > 0

    def test_status_cli(self, daemon, capsys):
        from repro.service.cli import main as smain

        assert smain(["status", "--addr", daemon["addr"]]) == 0
        out = capsys.readouterr().out
        assert "shard" in out and "workers" in out
