"""Tests for the max-flow solver and dependence-graph cuts."""

import pytest

from repro.analysis import DependenceGraph, IntersectCond, PredCond
from repro.frontend import compile_c
from repro.versioning import FlowNetwork, find_cut
from repro.versioning.flowgraph import _edge_key


class TestDinic:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 1) == 5

    def test_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(0, 2, 3)
        net.add_edge(2, 3, 3)
        assert net.max_flow(0, 3) == 5

    def test_classic_cross_graph(self):
        # max-flow needs the residual back edge to reach 2000 here
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1000)
        net.add_edge(0, 2, 1000)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1000)
        net.add_edge(2, 3, 1000)
        assert net.max_flow(0, 3) == 2000

    def test_disconnected(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 5)
        net.add_edge(2, 3, 5)
        assert net.max_flow(0, 3) == 0

    def test_min_cut_side(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 10)
        net.max_flow(0, 2)
        assert net.min_cut_side(0) == {0}

    def test_same_source_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_matches_networkx(self):
        """Cross-check against networkx on a random-ish graph."""
        import networkx as nx
        import random

        rng = random.Random(7)
        for _ in range(10):
            n = 8
            edges = []
            for _e in range(16):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    edges.append((u, v, rng.randint(1, 9)))
            net = FlowNetwork(n)
            g = nx.DiGraph()
            for u, v, c in edges:
                net.add_edge(u, v, c)
                if g.has_edge(u, v):
                    g[u][v]["capacity"] += c
                else:
                    g.add_edge(u, v, capacity=c)
            g.add_nodes_from(range(n))
            ours = net.max_flow(0, n - 1)
            theirs = nx.maximum_flow_value(g, 0, n - 1) if g.has_node(0) else 0
            assert ours == theirs


def running_example():
    src = """
    extern void cold_func(void);
    void f(double *X, double *Y) {
      Y[0] = 0.0;
      if (X[0] != 0.0) cold_func();
      Y[1] = 0.0;
    }
    """
    m = compile_c(src)
    fn = m["f"]
    g = DependenceGraph(fn)
    by_op = {}
    for inst in fn.instructions():
        by_op.setdefault(inst.opcode, []).append(inst)
    return m, fn, g, by_op


class TestFindCutRunningExample:
    def test_primary_cut_two_conditional_edges(self):
        """The Fig. 9 cut: {store1 -> call (c), load -> store0 (intersects)}."""
        _, _, g, ops = running_example()
        stores = ops["store"]
        cut = find_cut(g, stores, stores)
        assert cut is not None
        kinds = sorted(type(e.cond).__name__ for e in cut.cut_edges)
        assert kinds == ["IntersectCond", "PredCond"]
        pairs = {(e.src.opcode, e.dst.opcode) for e in cut.cut_edges}
        assert ("store", "call") in pairs
        # the intersects edge is either load->store0 (the paper's Fig. 9)
        # or the equally minimal store1->load cut
        assert ("load", "store") in pairs or ("store", "load") in pairs

    def test_updated_cut_after_secondary(self):
        """Fig. 11: with load->store0 removed, only {store1->call} remains
        and the source side shrinks to the second store."""
        _, _, g, ops = running_example()
        stores = ops["store"]
        load_edge = [
            e for e in g.all_edges()
            if e.src.opcode == "load" and e.dst.opcode == "store"
        ][0]
        cut = find_cut(g, stores, stores, removed={_edge_key(load_edge)})
        assert cut is not None
        assert len(cut.cut_edges) == 1
        (e,) = cut.cut_edges
        assert e.src.opcode == "store" and e.dst.opcode == "call"
        assert isinstance(e.cond, PredCond)
        assert cut.source_nodes == [stores[1]]

    def test_secondary_cut(self):
        """Fig. 10: separating the comparison from the stores cuts exactly
        the load -> store0 intersects edge."""
        _, _, g, ops = running_example()
        stores = ops["store"]
        cmp = ops["cmp"][0]
        cut = find_cut(g, [cmp], stores)
        assert cut is not None
        assert len(cut.cut_edges) == 1
        (e,) = cut.cut_edges
        assert e.src.opcode == "load" and isinstance(e.cond, IntersectCond)
        # source side that reaches the stores: the cmp and the load
        assert {n.opcode for n in cut.source_nodes} == {"cmp", "load"}

    def test_already_independent_returns_empty(self):
        src = "void f(double * restrict a, double * restrict b) { a[0] = 1.0; b[0] = 2.0; }"
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        cut = find_cut(g, stores, stores)
        assert cut is not None and cut.empty

    def test_unconditional_dependence_infeasible(self):
        src = """
        void f(double *a) {
          a[1] = a[0] + 1.0;
          a[2] = a[1] * 2.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        # store a[2] unconditionally depends on store a[1] via the load
        cut = find_cut(g, stores, stores)
        assert cut is None

    def test_likelihood_biases_cut_choice(self):
        """With profile capacities, the cut prefers low-likelihood edges."""
        _, _, g, ops = running_example()
        stores = ops["store"]
        # make the call edge "hot" so the min cut must look identical in
        # size but cheapest overall; here both cuts have one candidate
        # each so we just verify the API accepts a likelihood function.
        cut = find_cut(g, stores, stores, likelihood=lambda e: 0.5)
        assert cut is not None and len(cut.cut_edges) == 2
