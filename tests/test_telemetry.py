"""The repro.telemetry subsystem: registry, spans, export, gate, CLI.

Covers the contracts the package documents: stable label-addressed
handles that survive an in-place reset (the worker-delta protocol),
exponential histogram bucketing with exact count/sum, deterministic
snapshot/merge across simulated worker processes, the Prometheus and
JSON interchange formats, the bench-trajectory regression gate, and —
the hard invariant — bit-identical cycles/counters/checksums whether
telemetry is enabled, disabled at runtime, or disabled via
``REPRO_TELEMETRY``.
"""

import json

import pytest

from repro import telemetry
from repro.perf import measure
from repro.telemetry.check import check_thresholds, load_thresholds
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.registry import DEFAULT_BUCKETS, Registry
from repro.telemetry.spans import span, span_trace_events
from repro.workloads import tsvc

LEVEL = "supervec+v"


def _workload(name="s000"):
    return [w for w in tsvc.workloads() if w.name == name][0]


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test sees a zeroed (but enabled) default registry."""
    telemetry.reset()
    telemetry.set_enabled(True)
    yield
    telemetry.reset()
    telemetry.set_enabled(True)


# -- registry semantics -------------------------------------------------------


class TestRegistry:
    def test_handles_are_stable_per_label_set(self):
        r = Registry(enabled=True)
        a = r.counter("x_total", cache="build", outcome="hit")
        b = r.counter("x_total", outcome="hit", cache="build")
        c = r.counter("x_total", cache="build", outcome="miss")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert c.value == 0

    def test_kind_conflict_is_an_error(self):
        r = Registry(enabled=True)
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")

    def test_reset_zeroes_in_place_so_cached_handles_survive(self):
        r = Registry(enabled=True)
        c = r.counter("x_total")
        h = r.histogram("y_seconds")
        c.inc(5)
        h.observe(0.25)
        r.reset()
        assert c.value == 0
        assert h.count == 0 and h.sum == 0.0
        c.inc()
        h.observe(1.0)
        # the old handles write into the live registry, not a ghost
        assert r.counter("x_total").value == 1
        assert r.histogram("y_seconds").count == 1

    def test_disabled_registry_ignores_writes(self):
        r = Registry(enabled=False)
        c = r.counter("x_total")
        g = r.gauge("g")
        h = r.histogram("h")
        c.inc()
        g.set(7.0)
        h.observe(0.1)
        assert c.value == 0 and g.value == 0.0 and h.count == 0

    def test_env_var_disables_collection(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert Registry().enabled is False
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert Registry().enabled is True


class TestHistogramBucketing:
    def test_default_buckets_are_exponential(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        for lo, hi in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert hi == pytest.approx(2 * lo)

    def test_observations_land_in_the_right_bucket(self):
        r = Registry(enabled=True)
        h = r.histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        # upper bounds are inclusive; one implicit +Inf overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(105.65)


# -- snapshot / absorb / merge ------------------------------------------------


class TestSnapshotMerge:
    def _populate(self, r: Registry):
        r.counter("a_total", "help a", k="x").inc(2)
        r.counter("a_total", k="y").inc(3)
        r.gauge("g").set(4.0)
        r.histogram("h", buckets=(1.0, 2.0)).observe(1.5)

    def test_snapshot_is_deterministic_json(self):
        r = Registry(enabled=True)
        self._populate(r)
        s1, s2 = r.snapshot(), r.snapshot()
        assert json.dumps(s1, sort_keys=True) == json.dumps(s2,
                                                            sort_keys=True)
        names = [f["name"] for f in s1["metrics"]]
        assert names == sorted(names)

    def test_cross_process_merge_is_deterministic(self):
        """Two simulated workers absorb into the parent: counters add,
        gauges take the last value, histograms add exactly."""
        parent = Registry(enabled=True)
        snaps = []
        for _ in range(2):
            worker = Registry(enabled=True)
            self._populate(worker)
            snaps.append(worker.snapshot(include_spans=False))
        for s in snaps:
            parent.absorb(s)
        assert parent.counter("a_total", k="x").value == 4
        assert parent.counter("a_total", k="y").value == 6
        assert parent.gauge("g").value == 4.0
        h = parent.histogram("h", buckets=(1.0, 2.0))
        assert h.count == 2 and h.sum == pytest.approx(3.0)
        assert h.counts == [0, 2, 0]

    def test_module_level_absorb_skips_none(self):
        assert telemetry.absorb(None) is False
        r = Registry(enabled=True)
        self._populate(r)
        assert telemetry.absorb(r.snapshot(include_spans=False)) is True
        assert telemetry.counter("a_total", k="x").value == 2

    def test_merge_function_matches_absorb(self):
        a, b = Registry(enabled=True), Registry(enabled=True)
        self._populate(a)
        self._populate(b)
        merged = telemetry.merge([a.snapshot(), b.snapshot()])
        fam = {f["name"]: f for f in merged["metrics"]}
        vals = {tuple(sorted(s["labels"].items())): s["value"]
                for s in fam["a_total"]["series"]}
        assert vals[(("k", "x"),)] == 4
        assert vals[(("k", "y"),)] == 6
        assert merged["merged_from"] == 2

    def test_merge_refuses_mixed_lineage(self):
        a, b = Registry(enabled=True), Registry(enabled=True)
        sa, sb = a.snapshot(), b.snapshot()
        sb["lineage"] = dict(sa["lineage"], backend="other")
        with pytest.raises(telemetry.LineageMismatch):
            telemetry.merge([sa, sb])
        merged = telemetry.merge([sa, sb], allow_mixed=True)
        assert merged["merged_from"] == 2


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_spans_nest_and_feed_the_histogram(self):
        r = Registry(enabled=True)
        with span("outer", registry=r, backend="array"):
            with span("inner", registry=r):
                pass
        assert [e["path"] for e in r.spans] == ["outer/inner", "outer"]
        assert r.histogram("repro_span_seconds", span="outer",
                           backend="array").count == 1
        assert r.histogram("repro_span_seconds", span="inner").count == 1

    def test_bare_string_detail_is_coerced(self):
        r = Registry(enabled=True)
        with span("build", detail="s000", registry=r):
            pass
        assert r.spans[0]["labels"] == {"detail": "s000"}

    def test_trace_events_render_completed_spans(self):
        r = Registry(enabled=True)
        with span("execute", registry=r, backend="fused"):
            pass
        events = span_trace_events(registry=r, pid=9)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["pid"] == 9
        assert xs[0]["args"]["backend"] == "fused"
        # plus the process_name metadata record
        assert any(e["ph"] == "M" for e in events)

    def test_span_cap_bounds_the_event_log(self):
        r = Registry(enabled=True)
        r.span_cap = 2
        for _ in range(5):
            with span("s", registry=r):
                pass
        assert len(r.spans) == 2
        assert r.spans_dropped == 3
        assert r.snapshot()["spans"]["dropped"] == 3


# -- interchange formats ------------------------------------------------------


class TestExposition:
    def test_prometheus_text_format(self):
        r = Registry(enabled=True)
        r.counter("a_total", "things counted", k="x").inc(2)
        r.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = telemetry.to_prometheus(r.snapshot())
        assert "# HELP a_total things counted" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{k="x"} 2' in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_snapshot_roundtrip_and_format_check(self, tmp_path):
        r = Registry(enabled=True)
        r.counter("a_total").inc()
        p = str(tmp_path / "snap.json")
        telemetry.save_snapshot(r.snapshot(), p)
        loaded = telemetry.load_snapshot(p)
        assert loaded["metrics"][0]["series"][0]["value"] == 1
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as f:
            json.dump({"format": 999}, f)
        with pytest.raises(ValueError, match="format"):
            telemetry.load_snapshot(bad)

    def test_diff_reports_only_changed_series(self):
        a, b = Registry(enabled=True), Registry(enabled=True)
        a.counter("same_total").inc(1)
        b.counter("same_total").inc(1)
        b.counter("grew_total").inc(5)
        rows = telemetry.diff(a.snapshot(), b.snapshot())
        assert [r["name"] for r in rows] == ["grew_total"]
        assert rows[0]["delta"] == 5.0


# -- regression gate ----------------------------------------------------------


class TestCheckGate:
    def _write_bench(self, tmp_path, speedup):
        (tmp_path / "BENCH_interp.json").write_text(json.dumps({
            "geomean_exec_speedup_by_backend": {"compiled": speedup},
        }))

    def test_rules_pass_and_fail_on_real_values(self, tmp_path):
        self._write_bench(tmp_path, 4.5)
        rules = [{"file": "BENCH_interp.json",
                  "path": "geomean_exec_speedup_by_backend.compiled",
                  "op": ">=", "value": 3.0}]
        rows = check_thresholds(root=str(tmp_path), thresholds=rules)
        assert rows[0]["ok"] and rows[0]["actual"] == 4.5
        self._write_bench(tmp_path, 1.2)
        rows = check_thresholds(root=str(tmp_path), thresholds=rules)
        assert not rows[0]["ok"]

    def test_missing_file_or_path_is_a_failure(self, tmp_path):
        rules = [
            {"file": "nope.json", "path": "x", "op": ">=", "value": 1},
            {"file": "BENCH_interp.json", "path": "not.there",
             "op": ">=", "value": 1},
        ]
        self._write_bench(tmp_path, 4.5)
        rows = check_thresholds(root=str(tmp_path), thresholds=rules)
        assert not rows[0]["ok"] and "cannot read" in rows[0]["error"]
        assert not rows[1]["ok"] and "not found" in rows[1]["error"]

    def test_load_thresholds_validates(self, tmp_path):
        p = tmp_path / "rules.json"
        p.write_text(json.dumps([{"file": "f", "path": "p", "op": "~="}]))
        with pytest.raises(ValueError, match="unknown op"):
            load_thresholds(str(p))


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_dump_merges_and_renders(self, tmp_path, capsys):
        r = Registry(enabled=True)
        r.counter("a_total", k="x").inc(2)
        p1, p2 = str(tmp_path / "1.json"), str(tmp_path / "2.json")
        telemetry.save_snapshot(r.snapshot(), p1)
        telemetry.save_snapshot(r.snapshot(), p2)
        assert telemetry_main(["dump", p1, p2]) == 0
        out = capsys.readouterr().out
        assert "a_total" in out and ": 4" in out
        assert telemetry_main(["dump", p1, "--prom"]) == 0
        assert 'a_total{k="x"} 2' in capsys.readouterr().out

    def test_diff_cli(self, tmp_path, capsys):
        a, b = Registry(enabled=True), Registry(enabled=True)
        b.counter("grew_total").inc(3)
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        telemetry.save_snapshot(a.snapshot(), pa)
        telemetry.save_snapshot(b.snapshot(), pb)
        assert telemetry_main(["diff", pa, pb]) == 0
        assert "grew_total: 0.0 -> 3.0 (+3)" in capsys.readouterr().out

    def test_check_cli_exit_status(self, tmp_path, capsys):
        (tmp_path / "BENCH_interp.json").write_text(json.dumps({
            "geomean_exec_speedup_by_backend": {"compiled": 1.0},
        }))
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"file": "BENCH_interp.json",
             "path": "geomean_exec_speedup_by_backend.compiled",
             "op": ">=", "value": 3.0},
        ]))
        rc = telemetry_main(["check", "--root", str(tmp_path),
                             "--thresholds", str(rules)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


# -- instrumentation end-to-end ----------------------------------------------


class TestInstrumentation:
    def test_build_and_execute_populate_the_registry(self):
        w = _workload()
        module, stats = measure.build(w, LEVEL, use_cache=False)
        measure.execute(module, w, stats, backend="array")
        snap = telemetry.snapshot()
        by_name = {f["name"]: f for f in snap["metrics"]}
        assert sum(s["value"] for s in
                   by_name["repro_build_total"]["series"]) >= 1
        assert sum(s["value"] for s in
                   by_name["repro_exec_total"]["series"]) >= 1
        dispatch = by_name["repro_array_guard_dispatch_total"]["series"]
        assert sum(s["value"] for s in dispatch) >= 1
        assert all({"function", "loop", "outcome", "reason"}
                   <= set(s["labels"]) for s in dispatch)
        spans = {e["name"] for e in snap["spans"]["events"]}
        assert {"build", "execute"} <= spans

    def test_cache_stats_track_hits_and_misses(self):
        w = _workload()
        # stats are cumulative over the cache's lifetime (clear() drops
        # entries, not history), so assert deltas against the baseline
        measure.clear_all_caches()
        base = measure.cache_stats()["build"]
        measure.build(w, LEVEL, use_cache=True)  # empty memo: a miss
        measure.build(w, LEVEL, use_cache=True)  # memoized: a hit
        stats = measure.cache_stats()["build"]
        assert stats["misses"] == base["misses"] + 1
        assert stats["hits"] == base["hits"] + 1
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert stats["entries"] >= 1
        measure.clear_all_caches()
        assert measure.cache_stats()["build"]["entries"] == 0


# -- the hard invariant -------------------------------------------------------


class TestBitIdentity:
    """Telemetry must never perturb the simulation: cycles, counters,
    and checksums are bit-identical with collection on or off."""

    def _fingerprint(self, backend):
        w = _workload("s1112")
        measure.clear_all_caches()
        module, stats = measure.build(w, LEVEL, use_cache=False)
        res = measure.execute(module, w, stats, backend=backend)
        return res.cycles, res.checksum, res.counters.as_dict()

    @pytest.mark.parametrize(
        "backend", ["reference", "compiled", "fused", "array"]
    )
    def test_enabled_vs_disabled(self, backend):
        telemetry.set_enabled(True)
        on = self._fingerprint(backend)
        telemetry.set_enabled(False)
        off = self._fingerprint(backend)
        assert on == off

    def test_env_off_still_runs_and_collects_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        r = Registry()
        assert not r.enabled
        telemetry.set_enabled(False)
        telemetry.reset()
        fp = self._fingerprint("array")
        assert fp[0] > 0
        snap = telemetry.snapshot()
        for fam in snap["metrics"]:
            for s in fam["series"]:
                assert s.get("value", 0) == 0 and s.get("count", 0) == 0
        assert snap["spans"]["events"] == []
