"""End-to-end front-end tests: mini-C -> predicated SSA -> interpreter."""

import math

import pytest

from repro.frontend import LoweringError, ParseError, compile_c, parse, tokenize
from repro.frontend.lexer import LexError
from repro.interp import Interpreter
from repro.ir import verify_module


def run(source, fn="f", args=(), arrays=None, mem_out=None, externals=None):
    """Compile, run, and return (result, interpreter).

    ``arrays`` maps arg-name -> list of initial values; those args get
    allocated in memory and their base addresses passed.
    """
    m = compile_c(source)
    verify_module(m)
    interp = Interpreter(m, externals=externals)
    func = m.functions[fn]
    argv = []
    bases = {}
    for a in func.args:
        if arrays and a.name in arrays:
            data = arrays[a.name]
            base = interp.memory.alloc(len(data), a.name)
            interp.memory.write_array(base, data)
            bases[a.name] = base
            argv.append(base)
        else:
            argv.append((args or {}).get(a.name, 0) if isinstance(args, dict) else 0)
    if isinstance(args, (list, tuple)) and args:
        argv = list(args)
    res = interp.run(func, argv)
    return res, interp, bases


class TestLexer:
    def test_tokens_basic(self):
        toks = tokenize("int x = 42; // comment\n double y;")
        texts = [t.text for t in toks if t.kind != "eof"]
        assert texts == ["int", "x", "=", "42", ";", "double", "y", ";"]

    def test_float_literals(self):
        toks = tokenize("1.5 2e3 .5 1.0f")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == ["float", "float", "float", "float"]

    def test_block_comment(self):
        toks = tokenize("a /* stuff \n more */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_two_char_symbols(self):
        toks = tokenize("a<=b&&c!=d")
        assert [t.text for t in toks[:-1]] == ["a", "<=", "b", "&&", "c", "!=", "d"]

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("int @x;")


class TestParser:
    def test_function_with_params(self):
        prog = parse("void f(double *a, double * restrict b, int n) { }")
        f = prog.functions[0]
        assert [p.name for p in f.params] == ["a", "b", "n"]
        assert f.params[1].ctype.restrict
        assert not f.params[0].ctype.restrict

    def test_array_param_dims(self):
        prog = parse("const int N = 8;\nvoid f(double A[N][N]) { }")
        p = prog.functions[0].params[0]
        assert p.ctype.dims == (8, 8)

    def test_global_array(self):
        prog = parse("const int N = 4;\ndouble a[N + 1];\nvoid f() { }")
        assert prog.globals[1].ctype.dims == (5,)

    def test_const_expr_arith(self):
        prog = parse("const int N = 3;\nconst int M = N * N + 1;\nvoid f() {}")
        assert prog.globals[1].const_value == 10

    def test_extern_attrs(self):
        prog = parse("extern double g(double) __pure;\nvoid f() {}")
        assert prog.externs[0].pure

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f() { int x = 1 }")

    def test_for_with_decl_init(self):
        prog = parse("void f() { for (int i = 0; i < 3; i++) { } }")
        assert prog.functions[0].body[0].init is not None

    def test_unknown_const_in_dim(self):
        with pytest.raises(ParseError):
            parse("double a[K]; void f() {}")


class TestExpressions:
    def test_arithmetic(self):
        res, _, _ = run("double f() { return (1.0 + 2.0) * 3.0 - 4.0 / 2.0; }")
        assert res.return_value == 7.0

    def test_int_arith_and_promotion(self):
        res, _, _ = run("double f() { int i = 7; return i / 2 + 0.5; }")
        assert res.return_value == 3.5

    def test_modulo(self):
        res, _, _ = run("int f() { return 17 % 5; }")
        assert res.return_value == 2

    def test_unary_minus(self):
        res, _, _ = run("double f() { double x = 3.0; return -x; }")
        assert res.return_value == -3.0

    def test_ternary(self):
        res, _, _ = run("double f() { int i = 3; return i > 2 ? 1.0 : 2.0; }")
        assert res.return_value == 1.0

    def test_logical_ops(self):
        src = "int f() { int a = 1; int b = 0; int r = 0; if (a && !b) { r = 5; } return r; }"
        res, _, _ = run(src)
        assert res.return_value == 5

    def test_math_builtins(self):
        res, _, _ = run("double f() { return sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0); }")
        assert res.return_value == pytest.approx(4 + 2 + 8)

    def test_cast(self):
        res, _, _ = run("int f() { double x = 3.9; return (int) x; }")
        assert res.return_value == 3

    def test_comparison_chain(self):
        res, _, _ = run("int f() { int x = 0; if (1 < 2 && 2 <= 2 && 3 != 4) { x = 9; } return x; }")
        assert res.return_value == 9


class TestControlFlow:
    def test_if_else(self):
        src = """
        double f(double x) {
          double r = 0.0;
          if (x > 0.0) { r = 1.0; } else { r = -1.0; }
          return r;
        }
        """
        res, _, _ = run(src, args=[5.0])
        assert res.return_value == 1.0
        res, _, _ = run(src, args=[-5.0])
        assert res.return_value == -1.0

    def test_if_without_else(self):
        src = "double f(double x) { double r = 7.0; if (x > 0.0) r = 1.0; return r; }"
        assert run(src, args=[1.0])[0].return_value == 1.0
        assert run(src, args=[-1.0])[0].return_value == 7.0

    def test_nested_if(self):
        src = """
        int f(int x) {
          int r = 0;
          if (x > 0) { if (x > 10) { r = 2; } else { r = 1; } }
          return r;
        }
        """
        assert run(src, args=[20])[0].return_value == 2
        assert run(src, args=[5])[0].return_value == 1
        assert run(src, args=[-1])[0].return_value == 0

    def test_for_sum(self):
        src = """
        double f(double *a, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) { s += a[i]; }
          return s;
        }
        """
        res, interp, bases = run(src, arrays={"a": [1.0, 2.0, 3.0]}, args=None)
        # need n: rebuild argv manually
        m = compile_c(src)
        interp = Interpreter(m)
        base = interp.memory.alloc(3)
        interp.memory.write_array(base, [1.0, 2.0, 3.0])
        assert interp.run(m["f"], [base, 3]).return_value == 6.0

    def test_zero_trip_for(self):
        src = """
        double f(int n) {
          double s = 5.0;
          for (int i = 0; i < n; i++) { s += 1.0; }
          return s;
        }
        """
        assert run(src, args=[0])[0].return_value == 5.0

    def test_while(self):
        src = """
        int f(int n) {
          int i = 0;
          int c = 0;
          while (i < n) { i = i + 2; c = c + 1; }
          return c;
        }
        """
        assert run(src, args=[7])[0].return_value == 4

    def test_nested_loops_triangular(self):
        src = """
        int f(int n) {
          int c = 0;
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              c = c + 1;
          return c;
        }
        """
        assert run(src, args=[5])[0].return_value == 15

    def test_loop_with_if_inside(self):
        src = """
        int f(int n) {
          int c = 0;
          for (int i = 0; i < n; i++) {
            if (i % 2 == 0) { c = c + 1; }
          }
          return c;
        }
        """
        assert run(src, args=[10])[0].return_value == 5

    def test_scalar_carried_through_condition(self):
        """s258-style pattern: a conditionally updated loop-carried scalar."""
        src = """
        double f(double *a, double *d, int n) {
          double s = 0.0;
          double acc = 0.0;
          for (int i = 0; i < n; i++) {
            if (a[i] > 0.0) { s = d[i] * d[i]; }
            acc += s;
          }
          return acc;
        }
        """
        m = compile_c(src)
        interp = Interpreter(m)
        a = interp.memory.alloc(4)
        d = interp.memory.alloc(4)
        interp.memory.write_array(a, [1.0, -1.0, 1.0, -1.0])
        interp.memory.write_array(d, [2.0, 3.0, 4.0, 5.0])
        # s: 4, 4, 16, 16 -> acc = 40
        assert interp.run(m["f"], [a, d, 4]).return_value == 40.0


class TestArrays:
    def test_1d_store_load(self):
        src = """
        void f(double *a, int n) {
          for (int i = 0; i < n; i++) a[i] = i * 2.0;
        }
        """
        m = compile_c(src)
        interp = Interpreter(m)
        base = interp.memory.alloc(4)
        interp.run(m["f"], [base, 4])
        assert interp.memory.read_array(base, 4) == [0.0, 2.0, 4.0, 6.0]

    def test_2d_param_array(self):
        src = """
        const int N = 3;
        void f(double A[N][N]) {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              A[i][j] = i * 10.0 + j;
        }
        """
        m = compile_c(src)
        interp = Interpreter(m)
        base = interp.memory.alloc(9)
        interp.run(m["f"], [base])
        assert interp.memory.read_array(base, 9) == [0, 1, 2, 10, 11, 12, 20, 21, 22]

    def test_global_array(self):
        src = """
        const int N = 4;
        double g[N];
        double f() {
          for (int i = 0; i < N; i++) g[i] = 1.0;
          double s = 0.0;
          for (int i = 0; i < N; i++) s += g[i];
          return s;
        }
        """
        res, _, _ = run(src)
        assert res.return_value == 4.0

    def test_local_array(self):
        src = """
        double f() {
          double buf[8];
          for (int i = 0; i < 8; i++) buf[i] = i;
          return buf[5];
        }
        """
        assert run(src)[0].return_value == 5.0

    def test_compound_assign_element(self):
        src = """
        double f() {
          double buf[2];
          buf[0] = 3.0;
          buf[0] += 4.0;
          buf[0] *= 2.0;
          return buf[0];
        }
        """
        assert run(src)[0].return_value == 14.0

    def test_in_place_update_aliasing(self):
        """Reads and writes to the same array observe each other."""
        src = """
        void f(double *a, int n) {
          for (int i = 1; i < n; i++) a[i] = a[i-1] + 1.0;
        }
        """
        m = compile_c(src)
        interp = Interpreter(m)
        base = interp.memory.alloc(4)
        interp.memory.write_array(base, [5.0, 0.0, 0.0, 0.0])
        interp.run(m["f"], [base, 4])
        assert interp.memory.read_array(base, 4) == [5.0, 6.0, 7.0, 8.0]


class TestCalls:
    def test_extern_call(self):
        src = """
        extern double getval(void) __pure;
        double f() { return getval() + 1.0; }
        """
        res, _, _ = run(src, externals={"getval": lambda i, m, a: 41.0})
        assert res.return_value == 42.0

    def test_extern_effects(self):
        src = """
        extern void clobber(void);
        extern double peek(void) __readonly;
        void f() { clobber(); }
        """
        m = compile_c(src)
        calls = [i for i in m["f"].instructions() if i.opcode == "call"]
        assert calls[0].may_read() and calls[0].may_write()

    def test_undeclared_call_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { mystery(); }")


class TestErrors:
    def test_undeclared_var(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { x = 1; }")

    def test_conditional_return_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("int f(int x) { if (x > 0) return 1; return 0; }")

    def test_statements_after_return_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("int f() { return 1; int x = 2; }")

    def test_wrong_index_count(self):
        with pytest.raises(LoweringError):
            compile_c("const int N = 2;\nvoid f(double A[N][N]) { A[0] = 1.0; }")


class TestRunningExample:
    """The paper's Fig. 1 snippet compiles and behaves correctly."""

    SRC = """
    extern void cold_func(void);
    void f(double *X, double *Y) {
      Y[0] = 0.0;
      if (X[0] != 0.0) cold_func();
      Y[1] = 0.0;
    }
    """

    def test_no_alias_no_call(self):
        m = compile_c(self.SRC)
        interp = Interpreter(m)
        x = interp.memory.alloc(1)
        y = interp.memory.alloc(2)
        interp.memory.write_array(x, [0.0])
        interp.memory.write_array(y, [7.0, 7.0])
        res = interp.run(m["f"], [x, y])
        assert interp.memory.read_array(y, 2) == [0.0, 0.0]
        assert res.counters.calls == 0

    def test_call_taken_when_x_nonzero(self):
        m = compile_c(self.SRC)
        interp = Interpreter(m)
        x = interp.memory.alloc(1)
        y = interp.memory.alloc(2)
        interp.memory.write_array(x, [1.0])
        res = interp.run(m["f"], [x, y])
        assert res.counters.calls == 1

    def test_aliased_pointers(self):
        """X == Y+1: the first store feeds the load."""
        m = compile_c(self.SRC)
        interp = Interpreter(m)
        y = interp.memory.alloc(2)
        x = y  # X aliases Y[0]
        interp.memory.write_array(y, [3.0, 3.0])
        res = interp.run(m["f"], [x, y])
        # Y[0]=0 first, then load X (==Y[0]) reads 0 -> no call
        assert res.counters.calls == 0


class TestParseErrorPositions:
    """ParseError carries the 1-based line/column of the failing token."""

    def test_expect_failure_has_position(self):
        with pytest.raises(ParseError) as exc:
            parse("void f() {\n  int x = 1\n}")
        assert exc.value.line == 3
        assert exc.value.col == 1
        assert "line 3" in str(exc.value)

    def test_bad_expression_token_position(self):
        with pytest.raises(ParseError) as exc:
            parse("double f(double * A) { A[0] = ; return 0.0; }")
        assert exc.value.line == 1
        assert exc.value.col == 31
        assert "column 31" in str(exc.value)

    def test_bad_type_position(self):
        with pytest.raises(ParseError) as exc:
            parse("void f() {\n  frobnicate y;\n}")
        assert exc.value.line == 2

    def test_invalid_assignment_target_has_line(self):
        with pytest.raises(ParseError) as exc:
            parse("void f() {\n\n  3 = 4;\n}")
        assert exc.value.line == 3
        assert exc.value.col is None

    def test_position_survives_reraise(self):
        try:
            parse("void f() { int x = 1 }")
        except ParseError as e:
            assert isinstance(e.line, int)
            assert isinstance(e.col, int)
        else:
            raise AssertionError("expected ParseError")
