"""Scheduler priority-queue ordering: the tie-break contract.

The campaign's resumability proof leans on the scheduler draining the
same state in the same order no matter what produced it.  These tests
pin the documented ordering rules down:

* escalations preempt mutants preempt fresh seeds;
* equal-priority escalations pop FIFO (push order);
* equal-rarity mutants pop FIFO (push order), not by seed number or
  task content;
* the order survives a ``to_json``/``from_json`` checkpoint round-trip
  at any point mid-drain.
"""

from repro.fuzz.schedule import Scheduler, Task


def drain(sched: Scheduler, n: int = 100) -> list[Task]:
    out: list[Task] = []
    while True:
        batch = sched.next_batch(n)
        if not batch:
            return out
        out.extend(batch)


class TestClassOrdering:
    def test_escalations_preempt_mutants_preempt_fresh(self):
        sched = Scheduler(next_fresh=0, fresh_end=2)
        sched.push_mutant(Task("mutant", 7, variant=1), rarity=3)
        sched.push_escalation(Task("full", 5, reason="failure"))
        kinds = [t.kind for t in drain(sched)]
        assert kinds == ["full", "mutant", "seed", "seed"]

    def test_fresh_seeds_in_cursor_order(self):
        sched = Scheduler(next_fresh=10, fresh_end=14)
        assert [t.seed for t in drain(sched)] == [10, 11, 12, 13]


class TestTieBreaking:
    def test_equal_priority_escalations_pop_fifo(self):
        sched = Scheduler(next_fresh=0, fresh_end=0)
        # deliberately pushed in *descending* seed order: FIFO means
        # push order wins, not seed order, not reason strings
        pushed = [Task("full", s, reason=r)
                  for s, r in ((9, "novel"), (3, "audit"), (7, "failure"))]
        for t in pushed:
            sched.push_escalation(t)
        assert drain(sched) == pushed

    def test_equal_rarity_mutants_pop_fifo(self):
        sched = Scheduler(next_fresh=0, fresh_end=0)
        pushed = [Task("mutant", s, variant=v)
                  for s, v in ((8, 2), (1, 1), (5, 3))]
        for t in pushed:
            sched.push_mutant(t, rarity=2)
        assert drain(sched) == pushed

    def test_rarity_orders_before_push_order(self):
        sched = Scheduler(next_fresh=0, fresh_end=0)
        late_but_rare = Task("mutant", 1, variant=1)
        early_common = Task("mutant", 2, variant=1)
        sched.push_mutant(early_common, rarity=5)
        sched.push_mutant(late_but_rare, rarity=1)
        assert drain(sched) == [late_but_rare, early_common]

    def test_interleaved_classes_keep_per_class_fifo(self):
        sched = Scheduler(next_fresh=0, fresh_end=0)
        e1, e2 = Task("full", 4, reason="a"), Task("full", 2, reason="b")
        m1, m2 = Task("mutant", 9, variant=1), Task("mutant", 3, variant=1)
        sched.push_mutant(m1, rarity=1)
        sched.push_escalation(e1)
        sched.push_mutant(m2, rarity=1)
        sched.push_escalation(e2)
        assert drain(sched) == [e1, e2, m1, m2]


class TestCheckpointRoundTrip:
    def _populated(self) -> Scheduler:
        sched = Scheduler(next_fresh=3, fresh_end=6)
        sched.push_escalation(Task("full", 11, reason="failure"))
        sched.push_mutant(Task("mutant", 6, variant=2), rarity=4)
        sched.push_escalation(Task("full", 2, reason="audit"))
        sched.push_mutant(Task("mutant", 9, variant=1), rarity=4)
        sched.push_mutant(Task("mutant", 1, variant=1), rarity=0)
        return sched

    def test_round_trip_preserves_drain_order(self):
        want = drain(self._populated())
        sched = Scheduler.from_json(self._populated().to_json())
        assert drain(sched) == want

    def test_round_trip_mid_drain(self):
        ref = self._populated()
        head = ref.next_batch(2)
        resumed = Scheduler.from_json(ref.to_json())
        assert drain(resumed) == drain(self._populated())[len(head):]

    def test_round_trip_preserves_order_counter(self):
        # pushes after a resume must still sort after pre-resume pushes
        ref = self._populated()
        resumed = Scheduler.from_json(ref.to_json())
        newer = Task("mutant", 77, variant=1)
        resumed.push_mutant(newer, rarity=4)
        drained = drain(resumed)
        same_rank = [t for t in drained
                     if t.kind == "mutant" and t.seed in (6, 9, 77)]
        assert same_rank == [Task("mutant", 6, variant=2),
                             Task("mutant", 9, variant=1), newer]

    def test_json_is_plain_data(self):
        import json

        blob = json.dumps(self._populated().to_json())
        sched = Scheduler.from_json(json.loads(blob))
        assert drain(sched) == drain(self._populated())
