"""Diagnostics subsystem: remarks, pass records, profiles, exports.

Covers the observability acceptance criteria:

* golden-file remark streams for one PolyBench and one TSVC kernel at
  ``supervec+v`` (value numbers normalized — they depend on process-wide
  allocation order, everything else is deterministic);
* diagnostics-off and diagnostics-on runs are bit-identical in cycles,
  counters, and checksums on both backends;
* region profiles sum exactly to the measured cycles and agree across
  backends;
* per-function pipeline statistics, the enriched ChecksumMismatch, and
  backend-switch cache invalidation;
* JSONL and Chrome ``trace_event`` export well-formedness, IR snapshot
  dumping, and the ``repro.diag report`` CLI.
"""

from __future__ import annotations

import io
import json
import os
import re

import pytest

from repro.diag import (
    DiagnosticContext,
    chrome_trace,
    collect,
    get_context,
    write_jsonl,
)
from repro.diag.profile import total_cycles
from repro.diag.report import collect_suite, render_report, run_check
from repro.perf import measure
from repro.perf.measure import (
    ChecksumMismatch,
    RunResult,
    build,
    clear_reference_cache,
    get_default_backend,
    run_workload,
    set_default_backend,
    verified_run,
)
from repro.pipeline.pipelines import compile_and_optimize
from repro.workloads import polybench, tsvc

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _tsvc(name: str):
    return [w for w in tsvc.workloads() if w.name == name][0]


def _normalize(text: str) -> str:
    """Mask SSA value numbers, which depend on process allocation order."""
    return re.sub(r"\bv\d+\b", "v#", text)


def _collect_remarks(workload, level="supervec+v", rle=False) -> list[str]:
    with collect() as dc:
        build(workload, level=level, rle=rle, use_cache=False)
    return [_normalize(r.render()) for r in dc.remarks]


# -- golden remark streams ---------------------------------------------------


@pytest.mark.parametrize(
    "workload_name, factory, golden",
    [
        ("trisolv", polybench.trisolv, "remarks_trisolv_supervec_v.txt"),
        ("s113", lambda: _tsvc("s113"), "remarks_s113_supervec_v.txt"),
    ],
)
def test_remarks_golden(workload_name, factory, golden):
    got = _collect_remarks(factory())
    with open(os.path.join(GOLDEN_DIR, golden)) as f:
        want = f.read().splitlines()
    assert got == want, f"remark stream for {workload_name} changed"


def test_remark_stream_is_deterministic():
    w = _tsvc("s113")
    assert _collect_remarks(w) == _collect_remarks(w)


def test_s113_remarks_tell_the_versioning_story():
    """The remark stream alone explains s113: the a[0] reuse needs one
    run-time check, the cost model accepts, and the tree vectorizes."""
    text = "\n".join(_collect_remarks(_tsvc("s113")))
    assert "min-cut plan" in text
    assert "intersects(" in text
    assert "cost model accepts" in text
    assert "[Passed] slp" in text and "VL=4" in text


# -- zero-cost-when-disabled -------------------------------------------------


@pytest.mark.parametrize("backend", ["compiled", "reference"])
def test_diagnostics_do_not_perturb_measurement(backend):
    """Cycles, counters, and checksums are bit-identical with diagnostics
    off (the default) and on."""
    for w in (polybench.trisolv(), _tsvc("s113")):
        off = run_workload(w, "supervec+v", backend=backend, use_cache=False)
        with collect():
            on = run_workload(w, "supervec+v", backend=backend,
                              use_cache=False)
        assert on.cycles == off.cycles
        assert on.checksum == off.checksum
        assert on.counters.as_dict() == off.counters.as_dict()


def test_disabled_context_collects_nothing():
    with collect(enabled=False) as dc:
        assert not get_context().enabled
        build(polybench.trisolv(), level="supervec+v", use_cache=False)
    assert dc.remarks == [] and dc.passes == [] and dc.profiles == []


# -- execution profiles ------------------------------------------------------


@pytest.mark.parametrize("backend", ["compiled", "reference"])
def test_profile_sums_to_measured_cycles(backend):
    w = _tsvc("s113")
    with collect() as dc:
        res = run_workload(w, "supervec+v", backend=backend, use_cache=False)
    (prof,) = dc.profiles
    assert prof.backend == backend
    assert prof.total_cycles == res.cycles
    assert total_cycles(prof.regions) == pytest.approx(res.cycles, abs=1e-9)
    # inclusive cycles decompose: function = self + direct children
    by_region = {r.region: r for r in prof.regions}
    for r in prof.regions:
        kids = [
            c for c in prof.regions
            if c.region.startswith(r.region + "/")
            and "/" not in c.region[len(r.region) + 1:]
        ]
        assert r.cycles == pytest.approx(
            r.self_cycles + sum(k.cycles for k in kids), abs=1e-9
        )
    assert by_region[prof.function].kind == "function"


def test_profiles_agree_across_backends():
    w = polybench.atax()

    def regions(backend):
        with collect() as dc:
            run_workload(w, "supervec+v", backend=backend, use_cache=False)
        return [r.as_dict() for r in dc.profiles[0].regions]

    assert regions("compiled") == regions("reference")


def test_profile_attributes_check_overhead_to_versioned_region():
    with collect() as dc:
        run_workload(_tsvc("s113"), "supervec+v", use_cache=False)
    (prof,) = dc.profiles
    checked = [r for r in prof.regions if r.checks > 0]
    assert checked, "versioned s113 run shows no check overhead"
    assert all(r.check_cycles > 0 for r in checked)
    assert sum(r.checks for r in prof.regions) > 0


# -- pass instrumentation ----------------------------------------------------


def test_pass_records_cover_the_pipeline():
    with collect() as dc:
        build(polybench.trisolv(), level="supervec+v", use_cache=False)
    names = {p.pass_name for p in dc.passes}
    assert {"simplify", "gvn", "licm", "dce", "slp"} <= names
    for p in dc.passes:
        assert p.dur_us >= 0.0
        assert p.inst_before >= 0 and p.inst_after >= 0


def test_dump_ir_snapshots(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DUMP_IR", str(tmp_path))
    compile_and_optimize("void kernel(double * restrict a) { "
                         "for (int i = 0; i < 8; i++) a[i] = a[i] + 1.0; }",
                         level="supervec+v", name="snap")
    files = sorted(os.listdir(tmp_path))
    assert files, "REPRO_DUMP_IR produced no snapshots"
    assert any(f.endswith(".before.ir") for f in files)
    assert any(f.endswith(".after.ir") for f in files)
    assert all(f.startswith("snap.") for f in files)
    sample = (tmp_path / files[0]).read_text()
    assert "kernel" in sample


def test_pipeline_stats_per_function():
    src = """
    void kernel(double * restrict a) {
      double t = a[0] + a[0];
      for (int i = 0; i < 8; i++) a[i] = a[i] + t;
    }
    void helper(double * restrict b) {
      for (int i = 0; i < 8; i++) b[i] = b[i] * 2.0;
    }
    """
    _, stats = compile_and_optimize(src, level="supervec+v", name="two")
    assert set(stats.gvn) == {"kernel", "helper"}
    assert set(stats.licm) == {"kernel", "helper"}
    assert stats.gvn_deleted == sum(stats.gvn.values())
    assert stats.licm_hoisted == sum(stats.licm.values())
    assert set(stats.slp) == {"kernel", "helper"}


# -- measurement satellites --------------------------------------------------


def test_checksum_mismatch_is_self_describing():
    w = polybench.trisolv()
    fake_ref = RunResult(
        cycles=1.0, counters=measure.Counters(), checksum=12345.678,
        return_value=None, code_size=0,
    )
    with pytest.raises(ChecksumMismatch) as exc_info:
        verified_run(w, "supervec+v", reference=fake_ref, vl=4,
                     use_cache=False)
    e = exc_info.value
    assert e.workload == "trisolv"
    assert e.level == "supervec+v"
    assert e.backend == get_default_backend()
    assert e.vl == 4 and e.rle is False and e.honor_restrict is True
    assert e.expected == 12345.678
    msg = str(e)
    for needle in ("trisolv", "supervec+v", "backend=", "vl=4", "rle=off",
                   "restrict=on", "12345.678"):
        assert needle in msg


def test_set_default_backend_invalidates_caches():
    prev = get_default_backend()
    try:
        clear_reference_cache()
        set_default_backend("compiled")
        verified_run(polybench.trisolv(), "supervec+v", use_cache=True)
        assert measure._REFERENCE_CACHE and measure._RUN_CACHE
        set_default_backend("reference")
        assert not measure._REFERENCE_CACHE
        assert not measure._RUN_CACHE
        assert not measure._BUILD_CACHE
        # re-selecting the current backend must NOT drop warm caches
        verified_run(polybench.trisolv(), "supervec+v", use_cache=True)
        assert measure._REFERENCE_CACHE
        set_default_backend("reference")
        assert measure._REFERENCE_CACHE
        with pytest.raises(ValueError):
            set_default_backend("no-such-backend")
    finally:
        set_default_backend(prev)
        clear_reference_cache()


# -- export + CLI ------------------------------------------------------------


def _collected_context() -> DiagnosticContext:
    per = collect_suite([_tsvc("s113")], "supervec+v")
    return per[0][1]


def test_jsonl_export_round_trips():
    dc = _collected_context()
    buf = io.StringIO()
    n = write_jsonl(dc, buf)
    lines = buf.getvalue().splitlines()
    assert n == len(lines) == (
        len(dc.remarks) + len(dc.passes) + len(dc.profiles)
    )
    recs = [json.loads(line) for line in lines]
    kinds = {r["type"] for r in recs}
    assert kinds == {"remark", "pass", "profile"}
    prof = [r for r in recs if r["type"] == "profile"][0]
    assert prof["workload"] == "s113" and prof["regions"]


def test_chrome_trace_is_valid_trace_event_json():
    dc = _collected_context()
    trace = json.loads(json.dumps(chrome_trace(dc)))
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    for e in events:
        assert e["ph"] in ("X", "M")
        assert isinstance(e["pid"], int)
        if e["ph"] == "X":
            assert e["dur"] > 0 and e["ts"] >= 0
    # both tracks present: compile-time passes and execution regions
    assert any(e.get("cat") == "pass" for e in events)
    assert any(e.get("cat") == "exec" for e in events)


def test_report_renders_all_sections():
    per = collect_suite([_tsvc("s113")], "supervec+v")
    text = render_report(per, top=3)
    assert "== optimization remarks ==" in text
    assert "== pass timings ==" in text
    assert "== execution hot spots ==" in text
    assert "s113" in text and "kernel/loop@10.unrolled" in text


def test_report_check_smoke():
    assert run_check() == 0
