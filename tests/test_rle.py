"""Tests for versioned redundant load elimination (paper §V-B)."""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import verify_function
from repro.rle import run_rle

SPURIOUS_STORE = """
double f(double *a, double *b) {
  double x = a[0];
  b[0] = 99.0;
  double y = a[0];
  return x + y;
}
"""

CALL_BETWEEN = """
extern void touch(void);
double f(double *a) {
  double x = a[0];
  touch();
  double y = a[0];
  return x + y;
}
"""

CONDITIONAL_SECOND = """
double f(double *a, double *b, double c) {
  double x = a[0];
  b[0] = 5.0;
  double r = x;
  if (c > 0.0) { r = a[0] + x; }
  return r;
}
"""


def loads_in(fn):
    return sum(1 for i in fn.instructions() if i.opcode == "load")


class TestRLE:
    def test_eliminates_across_spurious_store(self):
        m = compile_c(SPURIOUS_STORE)
        fn = m["f"]
        stats = run_rle(fn)
        verify_function(fn)
        assert stats.loads_removed == 1
        assert stats.plans_materialized == 1

    def test_semantics_disjoint_and_aliased(self):
        for overlap in (False, True):
            m_ref = compile_c(SPURIOUS_STORE)
            m_opt = compile_c(SPURIOUS_STORE)
            run_rle(m_opt["f"])

            def run(m):
                interp = Interpreter(m)
                if overlap:
                    a = interp.memory.alloc(2)
                    b = a  # store b[0] clobbers a[0] between the loads
                else:
                    a = interp.memory.alloc(2)
                    b = interp.memory.alloc(2)
                interp.memory.store(a, 3.0)
                return interp.run(m["f"], [a, b]).return_value

            assert run(m_ref) == run(m_opt), f"overlap={overlap}"

    def test_dynamic_loads_reduced_when_disjoint(self):
        m_ref = compile_c(SPURIOUS_STORE)
        m_opt = compile_c(SPURIOUS_STORE)
        run_rle(m_opt["f"])

        def loads(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(2)
            b = interp.memory.alloc(2)
            return interp.run(m["f"], [a, b]).counters.loads

        assert loads(m_opt) < loads(m_ref)

    def test_call_blocks_without_versioning_framework_check(self):
        """An opaque call cannot be checked -> group infeasible."""
        m = compile_c(CALL_BETWEEN)
        stats = run_rle(m["f"])
        assert stats.loads_removed == 0
        assert stats.infeasible == 1

    def test_conditional_member_leader(self):
        """The guarded a[0] reuses the unconditional leader."""
        m_ref = compile_c(CONDITIONAL_SECOND)
        m_opt = compile_c(CONDITIONAL_SECOND)
        stats = run_rle(m_opt["f"])
        verify_function(m_opt["f"])
        assert stats.loads_removed == 1

        def run(m, c, overlap):
            interp = Interpreter(m)
            if overlap:
                a = interp.memory.alloc(2); b = a
            else:
                a = interp.memory.alloc(2); b = interp.memory.alloc(2)
            interp.memory.store(a, 2.0)
            return interp.run(m["f"], [a, b, c]).return_value

        for c in (1.0, -1.0):
            for ov in (False, True):
                assert run(m_ref, c, ov) == run(m_opt, c, ov)

    def test_no_versioning_mode_conservative(self):
        m = compile_c(SPURIOUS_STORE)
        stats = run_rle(m["f"], use_versioning=False)
        assert stats.loads_removed == 0

    def test_restrict_group_needs_no_plan(self):
        src = """
        double f(double * restrict a, double * restrict b) {
          double x = a[0];
          b[0] = 1.0;
          return x + a[0];
        }
        """
        m = compile_c(src)
        stats = run_rle(m["f"])
        assert stats.loads_removed == 1
        assert stats.plans_materialized == 0

    def test_unremovable_true_dependence(self):
        src = """
        double f(double *a) {
          double x = a[0];
          a[0] = x + 1.0;
          return x + a[0];
        }
        """
        m_ref = compile_c(src)
        m_opt = compile_c(src)
        stats = run_rle(m_opt["f"])
        assert stats.loads_removed == 0

        def run(m):
            interp = Interpreter(m)
            a = interp.memory.alloc(1)
            interp.memory.store(a, 1.0)
            return interp.run(m["f"], [a]).return_value

        assert run(m_ref) == run(m_opt) == 3.0

    def test_loads_in_loop_scope(self):
        src = """
        double f(double *a, double *b, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) {
            double x = a[0];
            b[i] = x;
            s += a[0];
          }
          return s;
        }
        """
        m_ref = compile_c(src)
        m_opt = compile_c(src)
        stats = run_rle(m_opt["f"])
        verify_function(m_opt["f"])

        def run(m, overlap):
            interp = Interpreter(m)
            if overlap:
                a = interp.memory.alloc(8); b = a
            else:
                a = interp.memory.alloc(8); b = interp.memory.alloc(8)
            interp.memory.store(a, 4.0)
            return interp.run(m["f"], [a, b, 5]).return_value

        for ov in (False, True):
            assert run(m_ref, ov) == run(m_opt, ov)
