"""Tests for the execution-predicate algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import BOOL, Cmp, Predicate, const_bool, const_int
from repro.ir.predicates import Literal


def _bools(n):
    return [Cmp("ne", const_int(i), const_int(0), name=f"b{i}") for i in range(n)]


class TestBasics:
    def test_true_is_empty_conjunction(self):
        assert Predicate.true().is_true()
        assert not Predicate.true().is_false()

    def test_of_single_literal(self):
        (b,) = _bools(1)
        p = Predicate.of(b)
        assert not p.is_true()
        assert list(p.values()) == [b]

    def test_negated_literal_str(self):
        (b,) = _bools(1)
        assert str(Predicate.of(b, negated=True)) == "!b0"

    def test_conjoin_accumulates_literals(self):
        a, b = _bools(2)
        p = Predicate.of(a).conjoin(Predicate.of(b))
        assert len(p.literals) == 2

    def test_conjoin_with_true_is_identity(self):
        (a,) = _bools(1)
        p = Predicate.of(a)
        assert p.conjoin(Predicate.true()) == p
        assert Predicate.true().conjoin(p) == p

    def test_conjoin_idempotent(self):
        (a,) = _bools(1)
        p = Predicate.of(a)
        assert p.conjoin(p) == p

    def test_and_value(self):
        a, b = _bools(2)
        p = Predicate.of(a).and_value(b, negated=True)
        assert Literal(b, True) in p.literals

    def test_contradiction_is_false(self):
        (a,) = _bools(1)
        p = Predicate.of(a).and_value(a, negated=True)
        assert p.is_false()

    def test_equality_and_hash(self):
        a, b = _bools(2)
        p1 = Predicate.of(a).and_value(b)
        p2 = Predicate.of(b).and_value(a)
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestImplication:
    def test_everything_implies_true(self):
        (a,) = _bools(1)
        assert Predicate.of(a).implies(Predicate.true())
        assert Predicate.true().implies(Predicate.true())

    def test_true_does_not_imply_literal(self):
        (a,) = _bools(1)
        assert not Predicate.true().implies(Predicate.of(a))

    def test_stronger_implies_weaker(self):
        a, b = _bools(2)
        strong = Predicate.of(a).and_value(b)
        weak = Predicate.of(a)
        assert strong.implies(weak)
        assert not weak.implies(strong)

    def test_literal_does_not_imply_negation(self):
        (a,) = _bools(1)
        assert not Predicate.of(a).implies(Predicate.of(a, negated=True))

    def test_false_implies_everything(self):
        a, b = _bools(2)
        contradiction = Predicate.of(a).and_value(a, negated=True)
        assert contradiction.implies(Predicate.of(b))

    def test_implies_is_reflexive(self):
        a, b = _bools(2)
        p = Predicate.of(a).and_value(b, negated=True)
        assert p.implies(p)


class TestSubstitution:
    def test_substitute_rewrites_literal(self):
        a, b = _bools(2)
        p = Predicate.of(a)
        q = p.substitute({a: b})
        assert list(q.values()) == [b]

    def test_substitute_preserves_negation(self):
        a, b = _bools(2)
        p = Predicate.of(a, negated=True)
        q = p.substitute({a: b})
        assert Literal(b, True) in q.literals

    def test_substitute_no_match_returns_same_object(self):
        a, b = _bools(2)
        p = Predicate.of(a)
        assert p.substitute({b: a}) is p

    def test_without_drops_literals(self):
        a, b = _bools(2)
        p = Predicate.of(a).and_value(b)
        q = p.without([a])
        assert list(q.values()) == [b]


@given(st.data())
def test_implication_transitive(data):
    """Random conjunction triples: implication must be transitive."""
    bools = _bools(4)
    def rand_pred():
        lits = data.draw(
            st.lists(
                st.tuples(st.sampled_from(range(4)), st.booleans()),
                max_size=4,
            )
        )
        p = Predicate.true()
        for i, neg in lits:
            p = p.and_value(bools[i], neg)
        return p

    p, q = rand_pred(), rand_pred()
    r = p.conjoin(q)
    # r is stronger than both
    assert r.implies(p) and r.implies(q)
    # transitivity through q
    if p.implies(q) and q.implies(r):
        assert p.implies(r)


@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=5))
def test_conjoin_commutative_associative(pairs):
    bools = _bools(4)
    preds = [Predicate.of(bools[i], neg) for i, neg in pairs]
    if not preds:
        return
    left = Predicate.true()
    for p in preds:
        left = left.conjoin(p)
    right = Predicate.true()
    for p in reversed(preds):
        right = p.conjoin(right)
    assert left == right
