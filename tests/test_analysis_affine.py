"""Tests for affine expressions, add-recurrences, and trip counts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Affine,
    addrec_of,
    affine_of,
    difference,
    is_invariant,
    mu_step,
    trip_count_affine,
)
from repro.ir import (
    INT,
    PTR,
    Argument,
    Function,
    IRBuilder,
    Module,
    const_int,
)


def setup_fn(args=("p", "n")):
    m = Module("t")
    types = {"p": PTR, "q": PTR}
    fn = m.add_function(
        Function("f", [Argument(a, types.get(a, INT)) for a in args])
    )
    return m, fn, IRBuilder(fn)


class TestAffine:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant() and a.const == 5

    def test_add_sub_cancel(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        x = Affine.symbol(n).add(Affine.constant(3))
        y = Affine.symbol(n).add(Affine.constant(1))
        assert difference(x, y) == 2

    def test_scale(self):
        _, fn, _ = setup_fn()
        n = fn.args[1]
        a = Affine.symbol(n).scale(3)
        assert a.coeff(n) == 3

    def test_scale_zero_clears(self):
        _, fn, _ = setup_fn()
        n = fn.args[1]
        assert Affine.symbol(n).scale(0).is_constant()

    def test_difference_symbolic_none(self):
        _, fn, b = setup_fn(args=("p", "n", "m"))
        n, m_ = fn.args[1], fn.args[2]
        assert difference(Affine.symbol(n), Affine.symbol(m_)) is None

    def test_eq_hash(self):
        _, fn, _ = setup_fn()
        n = fn.args[1]
        a = Affine({n: 2}, 1)
        b = Affine({n: 2}, 1)
        assert a == b and hash(a) == hash(b)


class TestAffineOf:
    def test_linear_expression(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        # 3*n + 5 via IR
        t = b.mul(n, const_int(3))
        e = b.add(t, const_int(5))
        aff = affine_of(e)
        assert aff.coeff(n) == 3 and aff.const == 5

    def test_sub_and_neg(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        e = b.sub(const_int(10), n)
        aff = affine_of(e)
        assert aff.coeff(n) == -1 and aff.const == 10

    def test_shl_as_scale(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        e = b.binop("shl", n, const_int(2))
        assert affine_of(e).coeff(n) == 4

    def test_nonlinear_is_opaque(self):
        _, fn, b = setup_fn(args=("p", "n", "m"))
        n, m_ = fn.args[1], fn.args[2]
        e = b.mul(n, m_)
        aff = affine_of(e)
        assert aff.coeff(e) == 1  # the mul itself is the symbol

    def test_ptradd_combines(self):
        _, fn, b = setup_fn()
        p, n = fn.args
        e = b.ptradd(p, b.add(n, const_int(2)))
        aff = affine_of(e)
        assert aff.coeff(p) == 1 and aff.coeff(n) == 1 and aff.const == 2

    def test_exactness_random(self):
        """affine_of result evaluates to the same number as the IR."""
        _, fn, b = setup_fn()
        n = fn.args[1]
        e = b.add(b.mul(b.sub(n, const_int(2)), const_int(4)), const_int(7))
        aff = affine_of(e)
        for val in (-3, 0, 11):
            expect = (val - 2) * 4 + 7
            got = aff.const + aff.coeff(n) * val
            assert got == expect


def canonical_loop(b, fn, n_val=10, step=1, start=0):
    loop = b.make_loop("L")
    i = b.mu(loop, const_int(start), name="i")
    with b.at(loop):
        nxt = b.add(i, const_int(step))
        cond = b.cmp("lt", nxt, fn.args[1] if n_val is None else const_int(n_val))
    i.set_rec(nxt)
    loop.set_cont(cond)
    return loop, i, nxt


class TestAddRec:
    def test_basic_iv(self):
        _, fn, b = setup_fn()
        loop, i, nxt = canonical_loop(b, fn)
        rec = addrec_of(i, loop)
        assert rec is not None
        assert rec.base.is_constant() and rec.base.const == 0
        assert rec.step.is_constant() and rec.step.const == 1

    def test_scaled_iv(self):
        _, fn, b = setup_fn()
        loop, i, nxt = canonical_loop(b, fn)
        with b.at(loop):
            e = b.add(b.mul(i, const_int(4)), const_int(100))
        rec = addrec_of(e, loop)
        assert rec.base.const == 100 and rec.step.const == 4

    def test_mu_step(self):
        _, fn, b = setup_fn()
        loop, i, nxt = canonical_loop(b, fn, step=3)
        s = mu_step(i)
        assert s is not None and s.const == 3

    def test_non_affine_recurrence_rejected(self):
        _, fn, b = setup_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(1), name="i")
        with b.at(loop):
            nxt = b.mul(i, const_int(2))  # geometric, not affine
            cond = b.cmp("lt", nxt, const_int(100))
        i.set_rec(nxt)
        loop.set_cont(cond)
        assert mu_step(i) is None
        assert addrec_of(i, loop) is None

    def test_loop_variant_symbol_rejected(self):
        m, fn, b = setup_fn()
        p = fn.args[0]
        loop, i, nxt = canonical_loop(b, fn)
        with b.at(loop):
            x = b.load(b.ptradd(p, i))  # loop-variant non-IV
            e = b.add(i, b.cast(x, INT))
        assert addrec_of(e, loop) is None

    def test_invariant_symbol_in_base(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        loop, i, nxt = canonical_loop(b, fn)
        with b.at(loop):
            e = b.add(i, n)
        rec = addrec_of(e, loop)
        assert rec is not None and rec.base.coeff(n) == 1


class TestTripCount:
    def test_constant_bound(self):
        _, fn, b = setup_fn()
        loop, i, nxt = canonical_loop(b, fn, n_val=10)
        tc = trip_count_affine(loop)
        assert tc is not None and tc.is_constant() and tc.const == 10

    def test_symbolic_bound(self):
        _, fn, b = setup_fn()
        n = fn.args[1]
        loop, i, nxt = canonical_loop(b, fn, n_val=None)
        tc = trip_count_affine(loop)
        assert tc is not None and tc.coeff(n) == 1 and tc.const == 0

    def test_le_bound(self):
        _, fn, b = setup_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            nxt = b.add(i, const_int(1))
            cond = b.cmp("le", nxt, const_int(10))
        i.set_rec(nxt)
        loop.set_cont(cond)
        tc = trip_count_affine(loop)
        assert tc.const == 11

    def test_non_unit_step_rejected(self):
        _, fn, b = setup_fn()
        loop, i, nxt = canonical_loop(b, fn, step=2)
        assert trip_count_affine(loop) is None

    def test_variant_bound_rejected(self):
        m, fn, b = setup_fn()
        p = fn.args[0]
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            x = b.load(b.ptradd(p, i))
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, b.cast(x, INT))
        i.set_rec(nxt)
        loop.set_cont(cond)
        assert trip_count_affine(loop) is None


@given(
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-5, 5),
)
def test_affine_ring_laws(c1, k1, c2, k2):
    m = Module("t")
    fn = m.add_function(Function("f", [Argument("n", INT)]))
    n = fn.args[0]
    a = Affine({n: k1}, c1)
    b = Affine({n: k2}, c2)
    assert a.add(b) == b.add(a)
    assert a.sub(b) == a.add(b.scale(-1))
    assert a.add(b).sub(b) == a
    assert a.scale(3).coeff(n) == 3 * k1
