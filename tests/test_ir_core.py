"""Tests for IR values, instructions, scopes, loops, and cloning."""

import pytest

from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    PTR,
    Argument,
    BinOp,
    Cmp,
    Eta,
    Function,
    IRBuilder,
    Load,
    Loop,
    Module,
    Mu,
    Phi,
    Predicate,
    Store,
    Undef,
    VerificationError,
    clone_instruction,
    clone_loop,
    const_float,
    const_int,
    print_function,
    program_order,
    vector_of,
    verify_function,
)


def make_fn(name="f", args=("X", "Y")):
    m = Module("t")
    fn = m.add_function(Function(name, [Argument(a, PTR) for a in args]))
    return m, fn, IRBuilder(fn)


class TestUseDef:
    def test_operands_register_users(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))
        y = b.add(x, x)
        assert y in x.users()

    def test_duplicate_operand_single_user_entry(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))
        y = b.add(x, x)
        assert x.users().count(y) == 1

    def test_replace_uses_of_operand(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))
        z = b.load(b.ptradd(fn.args[1], const_int(0)))
        y = b.add(x, x)
        y.replace_uses_of(x, z)
        assert y.operands == [z, z]
        assert y not in x.users()
        assert y in z.users()

    def test_replace_uses_in_predicate(self):
        _, fn, b = make_fn()
        c1 = b.cmp("ne", const_int(1), const_int(0), name="c1")
        c2 = b.cmp("ne", const_int(2), const_int(0), name="c2")
        with b.under(c1):
            s = b.store(b.ptradd(fn.args[0], const_int(0)), const_float(1.0))
        s.replace_uses_of(c1, c2)
        assert list(s.predicate.values()) == [c2]
        assert s in c2.users()
        assert s not in c1.users()

    def test_replace_uses_in_phi_edge_predicate(self):
        _, fn, b = make_fn()
        c1 = b.cmp("ne", const_int(1), const_int(0), name="c1")
        c2 = b.cmp("ne", const_int(2), const_int(0), name="c2")
        v1 = b.load(b.ptradd(fn.args[0], const_int(0)))
        v2 = b.load(b.ptradd(fn.args[1], const_int(0)))
        phi = b.phi([(v1, Predicate.of(c1)), (v2, Predicate.of(c1, True))])
        phi.replace_uses_of(c1, c2)
        assert all(list(p.values()) == [c2] for _, p in phi.incomings())

    def test_erase_drops_uses(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))
        y = b.add(x, x)
        y.scope_erase()
        assert not x.users()
        assert y.parent is None

    def test_set_predicate_updates_users(self):
        _, fn, b = make_fn()
        c = b.cmp("ne", const_int(1), const_int(0))
        s = b.store(b.ptradd(fn.args[0], const_int(0)), const_float(0.0))
        s.set_predicate(Predicate.of(c))
        assert s in c.users()
        s.set_predicate(Predicate.true())
        assert s not in c.users()


class TestScopes:
    def test_insert_before_after(self):
        _, fn, b = make_fn()
        a = b.load(b.ptradd(fn.args[0], const_int(0)))
        c = b.load(b.ptradd(fn.args[0], const_int(2)))
        mid = Load(a, FLOAT)  # placeholder load (not meaningful, just an item)
        fn.insert_before(c, mid)
        assert fn.items.index(mid) == fn.items.index(c) - 1
        late = Load(a, FLOAT)
        fn.insert_after(c, late)
        assert fn.items.index(late) == fn.items.index(c) + 1

    def test_program_order_monotonic_in_scope(self):
        _, fn, b = make_fn()
        i1 = b.load(b.ptradd(fn.args[0], const_int(0)))
        i2 = b.add(i1, i1)
        order = program_order(fn)
        assert order[i1] < order[i2]

    def test_program_order_loop_after_contents(self):
        _, fn, b = make_fn()
        loop = b.make_loop("L")
        i0 = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            nxt = b.add(i0, const_int(1))
            cond = b.cmp("lt", nxt, const_int(10), branch=True)
        i0.set_rec(nxt)
        loop.set_cont(cond)
        after = Load(fn.args[0], FLOAT)
        fn.append(after)
        order = program_order(fn)
        assert order[i0] < order[nxt] < order[loop] < order[after]


class TestLoops:
    def _simple_loop(self, n=10):
        m, fn, b = make_fn()
        X = fn.args[0]
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            ptr = b.ptradd(X, i)
            b.store(ptr, const_float(1.0))
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(n), branch=True)
        i.set_rec(nxt)
        loop.set_cont(cond)
        return m, fn, b, loop

    def test_loop_mem_instructions(self):
        _, fn, b, loop = self._simple_loop()
        mems = loop.mem_instructions()
        assert len(mems) == 1 and mems[0].opcode == "store"
        assert loop.may_write() and not loop.may_read()

    def test_verify_simple_loop(self):
        _, fn, _, _ = self._simple_loop()
        verify_function(fn)

    def test_verify_rejects_missing_cont(self):
        m, fn, b = make_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0))
        with b.at(loop):
            nxt = b.add(i, const_int(1))
        i.set_rec(nxt)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_verify_rejects_use_after_loop_without_eta(self):
        m, fn, b = make_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0))
        with b.at(loop):
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(4))
        i.set_rec(nxt)
        loop.set_cont(cond)
        b.add(nxt, const_int(1))  # illegal: inner value used outside
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_eta_exposes_liveout(self):
        m, fn, b, loop = self._simple_loop()
        # find the add feeding the mu
        nxt = loop.mus[0].rec
        out = b.eta(loop, nxt, name="i_final")
        b.add(out, const_int(0))
        verify_function(fn)

    def test_loop_replace_uses_of_cont(self):
        _, fn, b, loop = self._simple_loop()
        other = Cmp("lt", const_int(0), const_int(1))
        loop.append(other)
        old = loop.cont
        loop.replace_uses_of(old, other)
        assert loop.cont is other


class TestCloning:
    def test_clone_instruction_maps_operands(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)), name="x")
        y = b.load(b.ptradd(fn.args[1], const_int(0)), name="y")
        s = b.add(x, y)
        vmap = {x: y}
        c = clone_instruction(s, vmap)
        assert c.operands == [y, y]
        assert vmap[s] is c

    def test_clone_substitutes_predicate(self):
        _, fn, b = make_fn()
        c1 = b.cmp("ne", const_int(1), const_int(0), name="c1")
        c2 = b.cmp("ne", const_int(2), const_int(0), name="c2")
        with b.under(c1):
            s = b.store(b.ptradd(fn.args[0], const_int(0)), const_float(0.0))
        clone = clone_instruction(s, {c1: c2})
        assert list(clone.predicate.values()) == [c2]

    def test_clone_preserves_metadata(self):
        _, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))
        x.metadata["noalias_scopes"] = {1, 2}
        c = clone_instruction(x, {})
        assert c.metadata["noalias_scopes"] == {1, 2}
        # and it is a copy, not a shared dict
        c.metadata["noalias_scopes"].add(3)
        assert 3 not in x.metadata["noalias_scopes"]

    def test_clone_loop_rewires_internals(self):
        m, fn, b = make_fn()
        X = fn.args[0]
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            ptr = b.ptradd(X, i)
            b.store(ptr, const_float(1.0))
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(8))
        i.set_rec(nxt)
        loop.set_cont(cond)
        vmap = {}
        c = clone_loop(loop, vmap)
        # cloned mu's recurrence is the cloned add, not the original
        assert c.mus[0].rec is vmap[nxt]
        assert c.cont is vmap[cond]
        # cloned body instructions use the cloned mu
        cloned_ptr = vmap[ptr]
        assert cloned_ptr.operands[1] is vmap[i]

    def test_clone_nested_loop(self):
        m, fn, b = make_fn()
        X = fn.args[0]
        outer = b.make_loop("outer")
        i = b.mu(outer, const_int(0), name="i")
        with b.at(outer):
            inner = b.make_loop("inner")
            j = b.mu(inner, const_int(0), name="j")
            with b.at(inner):
                b.store(b.ptradd(X, b.add(i, j)), const_float(0.0))
                jn = b.add(j, const_int(1))
                jc = b.cmp("lt", jn, const_int(4))
            j.set_rec(jn)
            inner.set_cont(jc)
            inext = b.add(i, const_int(1))
            ic = b.cmp("lt", inext, const_int(4))
        i.set_rec(inext)
        outer.set_cont(ic)
        vmap = {}
        c = clone_loop(outer, vmap)
        inner_clone = [it for it in c.items if isinstance(it, Loop)][0]
        assert inner_clone is vmap[inner]
        assert inner_clone.mus[0].rec is vmap[jn]


class TestPrinter:
    def test_print_contains_predicates(self):
        _, fn, b = make_fn()
        c = b.cmp("ne", const_int(1), const_int(0), name="c")
        with b.under(c):
            b.store(b.ptradd(fn.args[0], const_int(0)), const_float(0.0))
        text = print_function(fn)
        assert "; c" in text
        assert "func f" in text

    def test_print_loop_structure(self):
        m, fn, b = make_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(4))
        i.set_rec(nxt)
        loop.set_cont(cond)
        text = print_function(fn)
        assert "with" in text and "while" in text


class TestTypes:
    def test_vector_type_interned(self):
        assert vector_of(FLOAT, 4) is vector_of(FLOAT, 4)

    def test_vector_slots(self):
        assert vector_of(FLOAT, 4).slots == 4
        assert FLOAT.slots == 1

    def test_vector_of_vector_rejected(self):
        with pytest.raises(ValueError):
            vector_of(vector_of(FLOAT, 2), 2)

    def test_single_lane_vector_rejected(self):
        with pytest.raises(ValueError):
            vector_of(FLOAT, 1)


class TestVerifierHardening:
    """The stricter invariants: predicate types, terminator placement,
    loop-scope well-nestedness, mu type agreement."""

    def _loop_fn(self):
        m, fn, b = make_fn()
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(4), branch=True)
        i.set_rec(nxt)
        loop.set_cont(cond)
        return m, fn, b, loop

    def test_rejects_non_bool_instruction_predicate(self):
        m, fn, b = make_fn()
        x = b.load(b.ptradd(fn.args[0], const_int(0)))  # f64, not bool
        st = b.store(b.ptradd(fn.args[0], const_int(1)), const_float(1.0))
        st.set_predicate(Predicate.true().and_value(x))
        with pytest.raises(VerificationError, match="not boolean"):
            verify_function(fn)

    def test_rejects_non_bool_loop_predicate(self):
        m, fn, b, loop = self._loop_fn()
        x = b.load(fn.args[0])  # f64, not bool
        fn.remove(x)
        fn.insert(0, x)  # defined before the loop
        loop.set_predicate(Predicate.true().and_value(x))
        with pytest.raises(VerificationError, match="not boolean"):
            verify_function(fn)

    def test_rejects_non_bool_continuation(self):
        m, fn, b, loop = self._loop_fn()
        loop.set_cont(loop.mus[0].rec)  # an int add, not a cmp
        with pytest.raises(VerificationError, match="not boolean"):
            verify_function(fn)

    def test_rejects_continuation_defined_outside_loop(self):
        m, fn, b = make_fn()
        outer = b.cmp("lt", const_int(0), const_int(4))
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        with b.at(loop):
            nxt = b.add(i, const_int(1))
        i.set_rec(nxt)
        loop.set_cont(outer)
        with pytest.raises(VerificationError, match="not defined inside"):
            verify_function(fn)

    def test_rejects_mu_type_disagreement(self):
        m, fn, b, loop = self._loop_fn()
        with b.at(loop):
            f = b.add(const_float(1.0), const_float(2.0))
        loop.mus[0].set_rec(f)  # f64 recurrence into an i32 mu
        with pytest.raises(VerificationError, match="type"):
            verify_function(fn)

    def test_rejects_stale_loop_parent(self):
        m, fn, b, loop = self._loop_fn()
        loop.parent = None
        with pytest.raises(VerificationError, match="stale parent"):
            verify_function(fn)

    def test_rejects_mu_as_scope_item(self):
        m, fn, b, loop = self._loop_fn()
        fn.items.append(loop.mus[0])
        with pytest.raises(VerificationError, match="scope item"):
            verify_function(fn)

    def test_accepts_well_formed_loop(self):
        _, fn, _, _ = self._loop_fn()
        verify_function(fn)
