"""Tests for the interpreter, memory model, and cost model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interp import Counters, Interpreter, InterpreterError, Memory, StepLimitExceeded
from repro.interp.memory import MemoryError_
from repro.ir import (
    FLOAT,
    INT,
    PTR,
    Argument,
    Function,
    IRBuilder,
    Module,
    Predicate,
    const_float,
    const_int,
    verify_function,
)


def fresh(args=("X", "Y")):
    m = Module("t")
    fn = m.add_function(Function("f", [Argument(a, PTR) for a in args]))
    return m, fn, IRBuilder(fn)


class TestMemory:
    def test_alloc_disjoint(self):
        mem = Memory(1024)
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert b >= a + 10

    def test_store_load_roundtrip(self):
        mem = Memory(1024)
        a = mem.alloc(4)
        mem.store(a + 2, 7.5)
        assert mem.load(a + 2) == 7.5

    def test_block_ops(self):
        mem = Memory(1024)
        a = mem.alloc(8)
        mem.store_block(a, [1, 2, 3, 4])
        assert mem.load_block(a, 4) == [1, 2, 3, 4]

    def test_oob_raises(self):
        mem = Memory(64)
        a = mem.alloc(4)
        with pytest.raises(MemoryError_):
            mem.load(a + 1000)

    def test_out_of_memory(self):
        mem = Memory(32)
        with pytest.raises(MemoryError_):
            mem.alloc(100)

    def test_overlapping_views_alias(self):
        """Pointers are raw addresses: overlapping views see each other."""
        mem = Memory(128)
        a = mem.alloc(16)
        b = a + 8  # overlapping 'array'
        mem.store(b, 42.0)
        assert mem.load(a + 8) == 42.0

    def test_null_page_rejected(self):
        """Addresses 0–15 are the reserved null page: dereferencing them
        must fail loudly, never silently read 0.0."""
        from repro.interp.memory import NULL_PAGE

        mem = Memory(128)
        mem.alloc(16)
        for addr in (0, 1, NULL_PAGE - 1):
            with pytest.raises(MemoryError_, match="unallocated"):
                mem.load(addr)
            with pytest.raises(MemoryError_, match="unallocated"):
                mem.store(addr, 1.0)
        with pytest.raises(MemoryError_, match="unallocated"):
            mem.load_block(0, 4)

    def test_first_allocation_starts_past_null_page(self):
        from repro.interp.memory import NULL_PAGE

        mem = Memory(128)
        assert mem.alloc(4) == NULL_PAGE

    def test_non_float_values_round_trip_exactly(self):
        """Ints (and anything not a plain float) survive a memory round
        trip bit-exactly via the overlay — integer semantics (truncating
        division, bit ops) depend on this on every backend."""
        mem = Memory(128)
        a = mem.alloc(8)
        mem.store(a, 7)
        assert mem.load(a) == 7 and type(mem.load(a)) is int
        mem.store(a, True)
        assert mem.load(a) is True
        mem.store(a, 2.5)  # a float store purges the overlay slot
        assert type(mem.load(a)) is float
        mem.store_block(a, [1, 2.0, 3])
        out = mem.load_block(a, 3)
        assert out == [1, 2.0, 3]
        assert [type(v) for v in out] == [int, float, int]

    def test_float_loads_return_plain_python_floats(self):
        """The NumPy slab must not leak np.float64 into execution (its
        division/NaN semantics differ from Python floats)."""
        mem = Memory(128)
        a = mem.alloc(4)
        mem.store(a, 1.5)
        assert type(mem.load(a)) is float
        mem.store_block(a, [1.0, 2.0])
        assert all(type(v) is float for v in mem.load_block(a, 2))


class TestScalarExecution:
    def test_store_then_load(self):
        m, fn, b = fresh()
        X = fn.args[0]
        p = b.ptradd(X, const_int(3))
        b.store(p, const_float(2.5))
        v = b.load(b.ptradd(X, const_int(3)))
        fn.set_return(v)
        verify_function(fn)
        interp = Interpreter(m)
        base = interp.memory.alloc(8)
        res = interp.run(fn, [base, 0])
        assert res.return_value == 2.5

    def test_arith(self):
        m, fn, b = fresh(args=())
        t = b.add(const_float(1.5), const_float(2.0))
        t = b.mul(t, const_float(2.0))
        t = b.sub(t, const_float(1.0))
        fn.set_return(t)
        res = Interpreter(m).run(fn, [])
        assert res.return_value == 6.0

    def test_int_division_truncates_toward_zero(self):
        m, fn, b = fresh(args=())
        q = b.div(const_int(-7), const_int(2))
        fn.set_return(q)
        assert Interpreter(m).run(fn, []).return_value == -3

    def test_rem_matches_c(self):
        m, fn, b = fresh(args=())
        r = b.binop("rem", const_int(-7), const_int(2))
        fn.set_return(r)
        assert Interpreter(m).run(fn, []).return_value == -1

    def test_select(self):
        m, fn, b = fresh(args=())
        c = b.cmp("lt", const_int(1), const_int(2))
        s = b.select(c, const_float(10.0), const_float(20.0))
        fn.set_return(s)
        assert Interpreter(m).run(fn, []).return_value == 10.0

    def test_predicated_store_skipped(self):
        m, fn, b = fresh()
        X = fn.args[0]
        c = b.cmp("lt", const_int(2), const_int(1))  # false
        with b.under(c):
            b.store(b.ptradd(X, const_int(0)), const_float(9.0))
        v = b.load(b.ptradd(X, const_int(0)))
        fn.set_return(v)
        interp = Interpreter(m)
        base = interp.memory.alloc(4)
        assert interp.run(fn, [base, 0]).return_value == 0.0

    def test_predicated_store_taken(self):
        m, fn, b = fresh()
        X = fn.args[0]
        c = b.cmp("lt", const_int(1), const_int(2))  # true
        with b.under(c):
            b.store(b.ptradd(X, const_int(0)), const_float(9.0))
        v = b.load(b.ptradd(X, const_int(0)))
        fn.set_return(v)
        interp = Interpreter(m)
        base = interp.memory.alloc(4)
        assert interp.run(fn, [base, 0]).return_value == 9.0

    def test_phi_selects_matching_edge(self):
        m, fn, b = fresh(args=())
        c = b.cmp("lt", const_int(5), const_int(3))  # false
        t = b.add(const_float(1.0), const_float(1.0))
        with b.under(c, negated=True):
            e = b.add(const_float(2.0), const_float(3.0))
        phi = b.phi([(t, Predicate.of(c)), (e, Predicate.of(c, True))])
        fn.set_return(phi)
        assert Interpreter(m).run(fn, []).return_value == 5.0

    def test_alloca(self):
        m, fn, b = fresh(args=())
        buf = b.alloca(8, name="buf")
        b.store(b.ptradd(buf, const_int(1)), const_float(4.0))
        v = b.load(b.ptradd(buf, const_int(1)))
        fn.set_return(v)
        assert Interpreter(m).run(fn, []).return_value == 4.0

    def test_missing_external_raises(self):
        m, fn, b = fresh(args=())
        b.call("does_not_exist")
        with pytest.raises(InterpreterError):
            Interpreter(m).run(fn, [])

    def test_external_call_executes(self):
        m, fn, b = fresh(args=())
        r = b.call("fortytwo", [], ret_type=INT, name="r")
        fn.set_return(r)
        interp = Interpreter(m, externals={"fortytwo": lambda i, mem, a: 42})
        assert interp.run(fn, []).return_value == 42

    def test_wrong_arity_rejected(self):
        m, fn, b = fresh()
        with pytest.raises(InterpreterError):
            Interpreter(m).run(fn, [1])


class TestLoops:
    def _sum_loop(self, n):
        """sum of X[0..n) -- do-while with entry guard."""
        m, fn, b = fresh(args=("X",))
        X = fn.args[0]
        entry = b.cmp("lt", const_int(0), const_int(n), branch=True)
        with b.under(entry):
            loop = b.make_loop("L")
        i = b.mu(loop, const_int(0), name="i")
        s = b.mu(loop, const_float(0.0), name="s")
        with b.at(loop, Predicate.true()):
            v = b.load(b.ptradd(X, i))
            s2 = b.add(s, v)
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", nxt, const_int(n), branch=True)
        i.set_rec(nxt)
        s.set_rec(s2)
        loop.set_cont(cond)
        with b.under(entry):
            out = b.eta(loop, s2, name="sum")
        final = b.phi([(out, Predicate.of(entry)), (const_float(0.0), Predicate.of(entry, True))])
        fn.set_return(final)
        verify_function(fn)
        return m, fn

    def test_sum_loop(self):
        m, fn = self._sum_loop(5)
        interp = Interpreter(m)
        base = interp.memory.alloc(8)
        interp.memory.write_array(base, [1.0, 2.0, 3.0, 4.0, 5.0])
        res = interp.run(fn, [base])
        assert res.return_value == 15.0

    def test_zero_trip_loop_not_entered(self):
        m, fn = self._sum_loop(0)
        interp = Interpreter(m)
        base = interp.memory.alloc(8)
        res = interp.run(fn, [base])
        assert res.return_value == 0.0
        assert res.counters.backedges == 0

    def test_backedges_counted(self):
        m, fn = self._sum_loop(5)
        interp = Interpreter(m)
        base = interp.memory.alloc(8)
        res = interp.run(fn, [base])
        assert res.counters.backedges == 5

    def test_nested_loop(self):
        """for i in 0..3: for j in 0..4: X[i*4+j] = i*10 + j"""
        m, fn, b = fresh(args=("X",))
        X = fn.args[0]
        outer = b.make_loop("outer")
        i = b.mu(outer, const_int(0), name="i")
        with b.at(outer):
            inner = b.make_loop("inner")
            j = b.mu(inner, const_int(0), name="j")
            with b.at(inner):
                addr = b.ptradd(X, b.add(b.mul(i, const_int(4)), j))
                val = b.add(b.mul(i, const_int(10)), j)
                b.store(addr, val)
                jn = b.add(j, const_int(1))
                jc = b.cmp("lt", jn, const_int(4), branch=True)
            j.set_rec(jn)
            inner.set_cont(jc)
            inx = b.add(i, const_int(1))
            ic = b.cmp("lt", inx, const_int(3), branch=True)
        i.set_rec(inx)
        outer.set_cont(ic)
        verify_function(fn)
        interp = Interpreter(m)
        base = interp.memory.alloc(12)
        interp.run(fn, [base])
        expect = [i * 10 + j for i in range(3) for j in range(4)]
        assert interp.memory.read_array(base, 12) == expect

    def test_step_limit(self):
        m, fn, b = fresh(args=())
        loop = b.make_loop("L")
        i = b.mu(loop, const_int(0))
        with b.at(loop):
            nxt = b.add(i, const_int(1))
            cond = b.cmp("lt", const_int(0), const_int(1))  # always true
        i.set_rec(nxt)
        loop.set_cont(cond)
        interp = Interpreter(m, max_steps=1000)
        with pytest.raises(StepLimitExceeded):
            interp.run(fn, [])


class TestVectors:
    def test_vload_vstore_roundtrip(self):
        m, fn, b = fresh(args=("X", "Y"))
        X, Y = fn.args
        v = b.vload(b.ptradd(X, const_int(0)), 4)
        b.vstore(b.ptradd(Y, const_int(0)), v)
        interp = Interpreter(m)
        x = interp.memory.alloc(4)
        y = interp.memory.alloc(4)
        interp.memory.write_array(x, [1.0, 2.0, 3.0, 4.0])
        interp.run(fn, [x, y])
        assert interp.memory.read_array(y, 4) == [1.0, 2.0, 3.0, 4.0]

    def test_vector_arith_matches_scalar(self):
        m, fn, b = fresh(args=("X", "Y"))
        X, Y = fn.args
        a = b.vload(b.ptradd(X, const_int(0)), 4)
        bb = b.vload(b.ptradd(X, const_int(4)), 4)
        s = b.vbin("mul", a, bb)
        b.vstore(b.ptradd(Y, const_int(0)), s)
        interp = Interpreter(m)
        x = interp.memory.alloc(8)
        y = interp.memory.alloc(4)
        interp.memory.write_array(x, [1, 2, 3, 4, 10, 20, 30, 40])
        interp.run(fn, [x, y])
        assert interp.memory.read_array(y, 4) == [10, 40, 90, 160]

    def test_buildvec_extract(self):
        m, fn, b = fresh(args=())
        v = b.buildvec([const_float(1.0), const_float(2.0), const_float(3.0)])
        e = b.extract(v, 2)
        fn.set_return(e)
        assert Interpreter(m).run(fn, []).return_value == 3.0

    def test_shuffle_two_vectors(self):
        m, fn, b = fresh(args=())
        a = b.buildvec([const_float(0.0), const_float(1.0)])
        c = b.buildvec([const_float(2.0), const_float(3.0)])
        sh = b.shuffle(a, c, [3, 0])
        e0 = b.extract(sh, 0)
        fn.set_return(e0)
        assert Interpreter(m).run(fn, []).return_value == 3.0

    def test_broadcast(self):
        m, fn, b = fresh(args=())
        v = b.broadcast(const_float(7.0), 4)
        e = b.extract(v, 3)
        fn.set_return(e)
        assert Interpreter(m).run(fn, []).return_value == 7.0

    def test_reduce_add(self):
        m, fn, b = fresh(args=())
        v = b.buildvec([const_float(x) for x in (1.0, 2.0, 3.0, 4.0)])
        r = b.reduce("add", v)
        fn.set_return(r)
        assert Interpreter(m).run(fn, []).return_value == 10.0

    def test_vselect(self):
        m, fn, b = fresh(args=())
        mask = b.vcmp("lt", b.buildvec([const_float(1.0), const_float(5.0)]),
                      b.broadcast(const_float(3.0), 2))
        sel = b.vselect(mask,
                        b.broadcast(const_float(1.0), 2),
                        b.broadcast(const_float(0.0), 2))
        r = b.reduce("add", sel)
        fn.set_return(r)
        assert Interpreter(m).run(fn, []).return_value == 1.0


class TestCostAndCounters:
    def test_vector_op_cheaper_than_scalars(self):
        """4 scalar adds cost more than 1 vector add: the premise of SLP."""

        def scalar_version():
            m, fn, b = fresh(args=())
            for i in range(4):
                b.add(const_float(i), const_float(1.0))
            return m, fn

        def vector_version():
            m, fn, b = fresh(args=())
            a = b.broadcast(const_float(1.0), 4)
            b.vbin("add", a, a)
            return m, fn

        ms, fs = scalar_version()
        mv, fv = vector_version()
        cs = Interpreter(ms).run(fs, []).cycles
        cv = Interpreter(mv).run(fv, []).cycles
        assert cs > cv - 1e-9 and cs >= 4.0

    def test_branch_counter(self):
        m, fn, b = fresh(args=())
        b.cmp("lt", const_int(0), const_int(1), branch=True)
        b.cmp("lt", const_int(0), const_int(1))  # not a branch source
        res = Interpreter(m).run(fn, [])
        assert res.counters.branches == 1

    def test_check_counter(self):
        m, fn, b = fresh(args=())
        chk = b.cmp("ne", const_int(0), const_int(1))
        chk.is_versioning_check = True
        res = Interpreter(m).run(fn, [])
        assert res.counters.checks == 1

    def test_load_store_counters(self):
        m, fn, b = fresh()
        X = fn.args[0]
        b.store(b.ptradd(X, const_int(0)), const_float(1.0))
        b.load(b.ptradd(X, const_int(0)))
        interp = Interpreter(m)
        base = interp.memory.alloc(4)
        res = interp.run(fn, [base, 0])
        assert res.counters.loads == 1 and res.counters.stores == 1

    def test_globals_allocated_and_disjoint(self):
        m = Module("g")
        m.add_global("A", 16)
        m.add_global("B", 16)
        fn = m.add_function(Function("f", []))
        b = IRBuilder(fn)
        A, B = m.globals["A"], m.globals["B"]
        b.store(b.ptradd(A, const_int(0)), const_float(1.0))
        b.store(b.ptradd(B, const_int(0)), const_float(2.0))
        va = b.load(b.ptradd(A, const_int(0)))
        fn.set_return(va)
        interp = Interpreter(m)
        assert interp.run(fn, []).return_value == 1.0


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20))
def test_sum_loop_matches_python(xs):
    """Property: the interpreter's loop semantics match Python's sum."""
    m = Module("t")
    fn = m.add_function(Function("f", [Argument("X", PTR)]))
    b = IRBuilder(fn)
    X = fn.args[0]
    n = len(xs)
    loop = b.make_loop("L")
    i = b.mu(loop, const_int(0), name="i")
    s = b.mu(loop, const_float(0.0), name="s")
    with b.at(loop):
        v = b.load(b.ptradd(X, i))
        s2 = b.add(s, v)
        nxt = b.add(i, const_int(1))
        cond = b.cmp("lt", nxt, const_int(n), branch=True)
    i.set_rec(nxt)
    s.set_rec(s2)
    loop.set_cont(cond)
    out = b.eta(loop, s2, name="sum")
    fn.set_return(out)
    interp = Interpreter(m)
    base = interp.memory.alloc(len(xs))
    interp.memory.write_array(base, xs)
    res = interp.run(fn, [base])
    assert res.return_value == pytest.approx(sum(xs))
