"""The repro.fuzz subsystem: generator, oracle, reducer, corpus, CLI.

Covers the guarantees the subsystem documents: absolute seed determinism,
grammar coverage beyond the old fixed templates, end-to-end detection of
planted pass bugs, reduction that preserves the failure while shrinking
to a handful of statements, per-pass verification localizing a corrupted
invariant to the pass that broke it, and corpus save/replay round trips.
"""

import json

import pytest

from repro.frontend import compile_c
from repro.fuzz import (
    PLANTED_BUGS,
    NotFailing,
    check_kernel,
    generate_kernel,
    load_entry,
    reduce_kernel,
    replay_entry,
    replay_ok,
    save_entry,
)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.generator import UnsafeAccess, collect_extents
from repro.fuzz.oracle import Config
from repro.ir import VerificationError
from repro.pipeline.pipelines import optimize


# -- generator ----------------------------------------------------------------


def test_generator_is_seed_deterministic():
    a = generate_kernel(7, name="k")
    b = generate_kernel(7, name="k")
    assert a.source == b.source
    assert a.bindings == b.bindings
    assert a.features == b.features
    assert generate_kernel(8, name="k").source != a.source


def test_generator_covers_the_grammar():
    """The feature space the ISSUE promises actually gets exercised."""
    seen: set = set()
    for seed in range(80):
        k = generate_kernel(seed)
        seen |= k.features
        # every kernel parses and stays in bounds by construction
        compile_c(k.source)
        k.validate()
    assert {
        "nested", "triangular", "while", "overlap", "restrict",
        "if", "reduction", "recurrence", "int-array",
    } <= seen


def test_generator_never_mixes_restrict_and_overlap():
    for seed in range(80):
        k = generate_kernel(seed)
        if any(b[0] == "alias" for b in k.bindings):
            assert not k.has_restrict


def test_collect_extents_skips_zero_trip_loops():
    # a reversed access (n-1)-i inside a zero-trip loop never executes,
    # so it must not be flagged as a potential negative index
    from repro.fuzz.generator import Assign, Bin, ForLoop, Load, Num, Var

    rev = Bin("-", Bin("-", Var("n"), Num(1, False)), Var("i"))
    body = [ForLoop("i", Var("n"), [Assign(Load("A", rev), Num(1.0))])]
    assert collect_extents(body, 0) == {}
    assert collect_extents(body, 4) == {"A": 4}


def test_validate_rejects_out_of_bounds():
    k = generate_kernel(0)
    from repro.fuzz.generator import Assign, Load, Num

    k.body.append(Assign(Load("A", Num(10_000, False)), Num(1.0)))
    with pytest.raises(UnsafeAccess):
        k.validate()


# -- oracle + planted bugs ----------------------------------------------------

# (seed, bug) pairs verified to fail; chosen small so the test stays fast
_PLANT_CASES = [
    (0, "mul-to-add"),
    (0, "drop-guard"),
    (0, "swap-sub"),
]


def test_oracle_passes_on_head_seed0():
    report = check_kernel(generate_kernel(0, name="fz000000"))
    assert report.ok, "\n".join(str(m) for m in report.mismatches)


@pytest.mark.parametrize("seed,bug", _PLANT_CASES)
def test_oracle_detects_planted_bug(seed, bug):
    assert bug in PLANTED_BUGS
    kernel = generate_kernel(seed, name=f"fz{seed:06d}")
    clean = check_kernel(kernel)
    assert clean.ok
    bad = check_kernel(kernel, bug=bug)
    assert not bad.ok
    # the planted corruption is a miscompile or a crash, never a parse
    # error or (verifier-clean by design) a verification failure
    assert bad.kinds() <= {
        "memory", "checksum", "return", "crash", "cycles", "counters"
    }


def test_reducer_shrinks_planted_bug_to_a_few_statements():
    kernel = generate_kernel(6, name="fz000006")
    assert kernel.stmt_count() >= 10
    result = reduce_kernel(kernel, bug="mul-to-add")
    assert result.stmt_count <= 5
    assert result.candidates_accepted > 0
    # the reduced kernel still fails the same way...
    rep = check_kernel(result.kernel, bug="mul-to-add",
                       configs=[result.fail_config], cross_backend=False)
    assert rep.kinds() & result.fail_kinds
    # ...and passes without the bug (the failure is the plant, not us)
    assert check_kernel(result.kernel).ok


def test_reducer_raises_on_passing_kernel():
    with pytest.raises(NotFailing):
        reduce_kernel(generate_kernel(0, name="fz000000"))


# -- hoisted O0 reference -----------------------------------------------------


def test_reference_built_exactly_once_per_seed():
    """Explicit config subsets reuse one memoized O0 reference run."""
    from repro import telemetry
    from repro.fuzz import clear_reference_memo

    telemetry.reset()
    clear_reference_memo()
    spec = generate_kernel(4, name="fz000004")
    check_kernel(spec, configs=[Config("O1")], cross_backend=False)
    check_kernel(spec, configs=[Config("O2"), Config("O3")],
                 cross_backend=False)
    built = telemetry.counter("repro_fuzz_reference_runs_total",
                              outcome="built")
    reused = telemetry.counter("repro_fuzz_reference_runs_total",
                               outcome="reused")
    assert built.value == 1
    assert reused.value == 1  # the second check_kernel call


# -- per-pass verification ----------------------------------------------------


def test_verify_each_pass_localizes_the_breaking_pass(monkeypatch):
    """A pass that corrupts the IR is named in the VerificationError."""
    import repro.pipeline.pipelines as pl

    real_simplify = pl.run_simplify

    def bad_simplify(fn):
        out = real_simplify(fn)
        # corrupt: move the first instruction to the end, breaking
        # def-before-use for anything that consumed it
        items = fn.items
        for i, item in enumerate(items):
            if not item.is_loop() and item.has_users():
                items.append(items.pop(i))
                break
        return out

    monkeypatch.setattr(pl, "run_simplify", bad_simplify)
    module = compile_c(
        "double kernel(double * A, int n) {\n"
        "  double s = A[0] + 1.0;\n"
        "  A[1] = s * 2.0;\n"
        "  return s;\n"
        "}\n"
    )
    with pytest.raises(VerificationError) as exc:
        optimize(module, "O3-scalar", verify_each_pass=True)
    assert "after pass 'simplify'" in str(exc.value)


def test_verify_each_pass_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
    module = compile_c(
        "double kernel(double * A, int n) {\n"
        "  for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; }\n"
        "  return A[0];\n"
        "}\n"
    )
    optimize(module, "supervec+v")  # verifies after every pass, clean


# -- corpus -------------------------------------------------------------------


def test_corpus_roundtrip_and_replay(tmp_path):
    kernel = generate_kernel(3, name="fz000003")
    path = save_entry(kernel, tmp_path, seed=3, expect="pass", note="pin")
    entry = load_entry(path)
    assert entry.name == kernel.name
    assert entry.source == kernel.source
    assert entry.bindings == kernel.bindings
    assert entry.seed == 3
    assert "repro.fuzz replay" in entry.repro
    report = replay_entry(entry)
    assert replay_ok(entry, report)


def test_corpus_expect_fail_rejects_parse_failures(tmp_path):
    kernel = generate_kernel(3, name="fz000003")
    path = save_entry(kernel, tmp_path, seed=3, expect="fail")
    data = json.loads(path.read_text())
    data["source"] = "double ! not c"
    path.write_text(json.dumps(data))
    entry = load_entry(path)
    report = replay_entry(entry)
    assert not report.ok
    assert not replay_ok(entry, report)  # parse != the pinned failure


def test_shipped_corpus_replays_clean():
    """Every entry under tests/corpus matches its recorded expectation."""
    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, iter_entries

    paths = list(iter_entries(DEFAULT_CORPUS_DIR))
    assert paths, "shipped corpus must not be empty"
    for path in paths:
        entry = load_entry(path)
        report = replay_entry(entry)
        assert replay_ok(entry, report), (
            f"{path}: expected {entry.expect}, got "
            + "\n".join(str(m) for m in report.mismatches)
        )


# -- CLI ----------------------------------------------------------------------


def test_cli_run_smoke(capsys):
    assert fuzz_main(["run", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 seeds, 0 failing kernels" in out


def test_cli_run_detects_planted_bug_and_saves(tmp_path, capsys):
    rc = fuzz_main([
        "run", "--seeds", "1", "--bug", "mul-to-add",
        "--save", "--corpus", str(tmp_path),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL fz000000" in out
    assert "repro:" in out
    saved = [p for p in tmp_path.glob("*.json")
             if p.name != "fuzz_telemetry.json"]
    assert len(saved) == 1
    entry = load_entry(saved[0])
    assert entry.bug == "mul-to-add"
    assert entry.expect == "fail"


def test_cli_replay_smoke(tmp_path, capsys):
    kernel = generate_kernel(1, name="fz000001")
    save_entry(kernel, tmp_path, seed=1, expect="pass")
    assert fuzz_main(["replay", str(tmp_path)]) == 0
    assert "0 unexpected outcomes" in capsys.readouterr().out


def _counter_totals(snapshot: dict, name: str) -> dict:
    out: dict = {}
    for fam in snapshot["metrics"]:
        if fam["name"] == name:
            for s in fam["series"]:
                key = tuple(sorted(s["labels"].items()))
                out[key] = out.get(key, 0) + s["value"]
    return out


def test_cli_run_pool_merges_identical_counters(tmp_path, capsys):
    """-j 1 (in-process) and -j 2 (pooled workers) must agree on every
    fuzz counter once the per-task worker deltas are absorbed."""
    from repro import telemetry

    snaps = {}
    for j in ("1", "2"):
        telemetry.reset()  # isolate each run's registry delta
        out = tmp_path / f"telemetry-j{j}.json"
        assert fuzz_main(["run", "--seeds", "4", "-j", j,
                          "--telemetry-out", str(out)]) == 0
        snaps[j] = json.loads(out.read_text())
    capsys.readouterr()
    for name in ("repro_fuzz_seeds_total", "repro_fuzz_failure_kinds_total"):
        assert _counter_totals(snaps["1"], name) == \
            _counter_totals(snaps["2"], name)
    merged = _counter_totals(snaps["2"],
                             "repro_worker_snapshots_merged_total")
    assert sum(merged.values()) == 4  # one absorbed snapshot per seed


def test_cli_replay_covers_campaign_findings(tmp_path, capsys):
    """``fuzz replay CAMPAIGN_DIR`` replays every sharded finding and
    skips the campaign's own state files."""
    from repro.fuzz import CampaignConfig, run_campaign

    d = tmp_path / "camp"
    summary = run_campaign(
        d, CampaignConfig(seeds=1, bug="vec-swap-sub", batch=1,
                          round_batches=1, mutate=False, num_shards=2),
        jobs=1)
    assert summary.findings  # seed 0 triggers the vector-only plant
    assert fuzz_main(["replay", str(d)]) == 0
    out = capsys.readouterr().out
    assert f"replay: {len(summary.findings)} entries, 0 unexpected" in out
    assert "manifest.json" not in out
