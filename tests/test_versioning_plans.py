"""Tests for nested versioning-plan inference and materialization.

The heart of the reproduction: the running example must produce the
paper's nested plan (Fig. 12) and, once materialized, behave identically
to the original program on every aliasing scenario (Fig. 15).
"""

import pytest

from repro.analysis import DependenceGraph, IntersectCond, PredCond
from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import print_function, verify_function
from repro.versioning import (
    VersioningFramework,
    infer_plan_for_items,
    make_independent,
)

RUNNING_EXAMPLE = """
extern void cold_func(void);
void f(double *X, double *Y) {
  Y[0] = 0.0;
  if (X[0] != 0.0) cold_func();
  Y[1] = 0.0;
}
"""


def compiled(src):
    m = compile_c(src)
    fn = list(m.functions.values())[0]
    ops = {}
    for inst in fn.instructions():
        ops.setdefault(inst.opcode, []).append(inst)
    return m, fn, ops


class TestInference:
    def test_running_example_nested_plan(self):
        m, fn, ops = compiled(RUNNING_EXAMPLE)
        g = DependenceGraph(fn)
        stores = ops["store"]
        plan = infer_plan_for_items(g, stores)
        assert plan is not None
        # Fig 12: primary versions both stores under {c}
        assert set(map(id, plan.nodes)) >= set(map(id, stores))
        assert len(plan.conditions) == 1
        assert isinstance(plan.conditions[0], PredCond)
        # and a secondary plan with the intersects condition exists
        assert plan.secondary is not None
        sec = plan.secondary
        assert any(isinstance(c, IntersectCond) for c in sec.conditions)
        assert plan.depth() == 2

    def test_secondary_versions_load_and_cmp(self):
        m, fn, ops = compiled(RUNNING_EXAMPLE)
        g = DependenceGraph(fn)
        plan = infer_plan_for_items(g, ops["store"])
        sec_ops = {n.opcode for n in plan.secondary.nodes}
        assert "store" in sec_ops  # input nodes are versioned too

    def test_independent_items_give_empty_plan(self):
        m, fn, ops = compiled(
            "void f(double * restrict a, double * restrict b) { a[0]=1.0; b[0]=2.0; }"
        )
        g = DependenceGraph(fn)
        plan = infer_plan_for_items(g, ops["store"])
        assert plan is not None and plan.is_empty()

    def test_unconditional_chain_infeasible(self):
        m, fn, ops = compiled(
            "void f(double *a) { a[1] = a[0] + 1.0; a[2] = a[1] * 2.0; }"
        )
        g = DependenceGraph(fn)
        plan = infer_plan_for_items(g, ops["store"])
        assert plan is None

    def test_framework_api(self):
        m, fn, ops = compiled(RUNNING_EXAMPLE)
        vf = VersioningFramework(fn)
        plan = vf.infer_for_items(ops["store"])
        assert plan is not None and not plan.is_empty()

    def test_mixed_scope_rejected(self):
        m, fn, ops = compiled(
            "void f(double *a, int n) { a[0]=1.0; for (int i=0;i<n;i++) a[i]=2.0; }"
        )
        vf = VersioningFramework(fn)
        loop_store = [i for i in ops["store"] if i.parent is not fn][0]
        top_store = [i for i in ops["store"] if i.parent is fn][0]
        with pytest.raises(ValueError):
            vf.infer_for_items([top_store, loop_store])


def run_fig1(fn_module, x_init, alias_mode):
    """Run the (possibly versioned) running example.

    alias_mode: 'disjoint', 'x_is_y0' (X == &Y[0]), 'x_is_y1' (X == &Y[1]).
    Returns (y values, calls, checks, mem of X cell).
    """
    m = fn_module
    calls = []
    interp = Interpreter(
        m, externals={"cold_func": lambda i, mem, a: calls.append(1)}
    )
    if alias_mode == "disjoint":
        x = interp.memory.alloc(1)
        y = interp.memory.alloc(2)
    else:
        y = interp.memory.alloc(2)
        x = y if alias_mode == "x_is_y0" else y + 1
    interp.memory.store(x, x_init)
    res = interp.run(m["f"], [x, y])
    return interp.memory.read_array(y, 2), len(calls), res.counters.checks


SCENARIOS = [
    ("disjoint", 0.0),
    ("disjoint", 5.0),
    ("x_is_y0", 0.0),
    ("x_is_y0", 5.0),
    ("x_is_y1", 0.0),
    ("x_is_y1", 5.0),
]


class TestMaterializationSemantics:
    """Versioned and original programs agree on every aliasing scenario."""

    @pytest.mark.parametrize("alias_mode,x_init", SCENARIOS)
    def test_semantics_preserved(self, alias_mode, x_init):
        m_ref, fn_ref, ops_ref = compiled(RUNNING_EXAMPLE)
        m_ver, fn_ver, ops_ver = compiled(RUNNING_EXAMPLE)
        assert make_independent(fn_ver, ops_ver["store"])
        verify_function(fn_ver)
        ref = run_fig1(m_ref, x_init, alias_mode)
        ver = run_fig1(m_ver, x_init, alias_mode)
        assert ver[0] == ref[0], print_function(fn_ver)
        assert ver[1] == ref[1]  # same number of cold_func calls

    def test_checks_execute_in_versioned_program(self):
        m_ver, fn_ver, ops_ver = compiled(RUNNING_EXAMPLE)
        make_independent(fn_ver, ops_ver["store"])
        _, _, checks = run_fig1(m_ver, 0.0, "disjoint")
        assert checks > 0

    def test_stores_duplicated(self):
        m_ver, fn_ver, ops_ver = compiled(RUNNING_EXAMPLE)
        n_before = sum(1 for i in fn_ver.instructions() if i.opcode == "store")
        make_independent(fn_ver, ops_ver["store"])
        n_after = sum(1 for i in fn_ver.instructions() if i.opcode == "store")
        assert n_after > n_before

    def test_versioned_originals_get_noalias_groups(self):
        m_ver, fn_ver, ops_ver = compiled(RUNNING_EXAMPLE)
        stores = ops_ver["store"]
        make_independent(fn_ver, stores)
        from repro.analysis.alias import NOALIAS_GROUPS_KEY

        for s in stores:
            assert s.metadata.get(NOALIAS_GROUPS_KEY)

    def test_post_materialization_originals_independent(self):
        """With the plan's removed edges assumed independent, a fresh graph
        shows no path between the versioned stores."""
        m_ver, fn_ver, ops_ver = compiled(RUNNING_EXAMPLE)
        stores = ops_ver["store"]
        vf = VersioningFramework(fn_ver)
        plan = vf.infer_for_items(stores)
        removed = set(plan.removed_edges)
        vf.materialize([plan])
        g = DependenceGraph(fn_ver, assume_independent=removed)
        from repro.versioning import find_cut

        cut = find_cut(g, stores, stores)
        assert cut is not None and cut.empty


class TestLoopVersioningSemantics:
    """Whole-loop granularity: two may-alias loops made independent."""

    SRC = """
    void f(double *a, double *b, int n) {
      for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
      for (int i = 0; i < n; i++) b[i] = b[i] * 2.0;
    }
    """

    def _run(self, module, overlap):
        interp = Interpreter(module)
        if overlap:
            a = interp.memory.alloc(12)  # b = a+4 overlaps a[4..10)
            b = a + 4
            interp.memory.write_array(a, [1.0] * 12)
        else:
            a = interp.memory.alloc(8)
            b = interp.memory.alloc(8)
            interp.memory.write_array(a, [1.0] * 8)
            interp.memory.write_array(b, [3.0] * 8)
        interp.run(module["f"], [a, b, 6])
        return interp.memory.read_array(a, 8), interp.memory.read_array(b, 6)

    def test_loops_versionable(self):
        m, fn, ops = compiled(self.SRC)
        from repro.ir import Loop

        loops = [it for it in fn.items if isinstance(it, Loop)]
        vf = VersioningFramework(fn)
        plan = vf.infer_for_items(loops)
        assert plan is not None and not plan.is_empty()

    @pytest.mark.parametrize("overlap", [False, True])
    def test_loop_versioning_preserves_semantics(self, overlap):
        from repro.ir import Loop

        m_ref, fn_ref, _ = compiled(self.SRC)
        m_ver, fn_ver, _ = compiled(self.SRC)
        loops = [it for it in fn_ver.items if isinstance(it, Loop)]
        assert make_independent(fn_ver, loops)
        verify_function(fn_ver)
        assert self._run(m_ref, overlap) == self._run(m_ver, overlap)


class TestScalarChainVersioning:
    """Versioning a value-producing instruction reroutes its users via a
    versioning phi, including the function return value."""

    SRC = """
    double f(double *a, double *b) {
      b[0] = 7.0;
      double x = a[0];
      return x * 2.0;
    }
    """

    def _run(self, module, overlap):
        interp = Interpreter(module)
        if overlap:
            a = interp.memory.alloc(2)
            b = a
        else:
            a = interp.memory.alloc(2)
            b = interp.memory.alloc(2)
        interp.memory.store(a, 3.0)
        return interp.run(module["f"], [a, b]).return_value

    @pytest.mark.parametrize("overlap", [False, True])
    def test_load_versioned_against_store(self, overlap):
        m_ref, fn_ref, ops_ref = compiled(self.SRC)
        m_ver, fn_ver, ops_ver = compiled(self.SRC)
        load = ops_ver["load"][0]
        store = ops_ver["store"][0]
        vf = VersioningFramework(fn_ver)
        plan = vf.infer_independence([load], [store])
        assert plan is not None and not plan.is_empty()
        vf.materialize([plan])
        verify_function(fn_ver)
        assert self._run(m_ref, overlap) == self._run(m_ver, overlap)
