"""Integration tests: pipelines × workloads, verified against O0.

Every configuration run in the benchmarks must produce bit-identical (or
float-tolerant) results to the unoptimized build; these tests pin that
for a representative sample so the benches can't silently miscompile.
"""

import pytest

from repro.perf.measure import (
    ChecksumMismatch,
    geomean,
    run_workload,
    verified_run,
)
from repro.pipeline.pipelines import PIPELINES, compile_and_optimize
from repro.workloads import polybench, speclike, tsvc

POLY_SAMPLE = ["gemm", "atax", "floyd-warshall", "lu", "correlation", "trisolv"]
TSVC_SAMPLE = ["s000", "s113", "s121", "s258", "s281", "s311", "s313", "s452"]


def poly(name):
    return next(f() for f in polybench.ALL if f().name == name)


def tsv(name):
    return next(w for w in tsvc.workloads() if w.name == name)


class TestPolybenchVerified:
    @pytest.mark.parametrize("name", POLY_SAMPLE)
    @pytest.mark.parametrize("level", ["O3-scalar", "O3", "supervec", "supervec+v"])
    def test_verified(self, name, level):
        w = poly(name)
        ref = run_workload(w, "O0")
        verified_run(w, level, reference=ref)

    @pytest.mark.parametrize("name", POLY_SAMPLE)
    def test_verified_no_restrict(self, name):
        w = poly(name)
        ref = run_workload(w, "O0", honor_restrict=False)
        verified_run(w, "supervec+v", reference=ref, honor_restrict=False)

    def test_versioning_only_kernels_win(self):
        """The Fig. 16 claim, strongest on floyd-warshall: the in-place
        update is vectorizable only with fine-grained checks.  (lu's
        inner dot products are pure-load reductions both configurations
        handle, so it only needs to be no worse here.)"""
        w = poly("floyd-warshall")
        ref = run_workload(w, "O0")
        o3 = verified_run(w, "O3", reference=ref)
        svv = verified_run(w, "supervec+v", reference=ref)
        assert svv.cycles < o3.cycles
        w = poly("lu")
        ref = run_workload(w, "O0")
        o3 = verified_run(w, "O3", reference=ref)
        svv = verified_run(w, "supervec+v", reference=ref)
        assert svv.cycles <= o3.cycles


class TestTSVCVerified:
    @pytest.mark.parametrize("name", TSVC_SAMPLE)
    @pytest.mark.parametrize("level", ["O3", "supervec", "supervec+v"])
    def test_verified(self, name, level):
        w = tsv(name)
        ref = run_workload(w, "O0")
        verified_run(w, level, reference=ref)

    def test_s281_versioning_beats_loop_versioning(self):
        w = tsv("s281")
        ref = run_workload(w, "O0")
        o3 = verified_run(w, "O3", reference=ref)
        svv = verified_run(w, "supervec+v", reference=ref)
        assert svv.cycles < o3.cycles

    def test_s258_parameter_variant_verified(self):
        w = tsvc.s258_parameter_variant()
        ref = run_workload(w, "O0")
        r = verified_run(w, "supervec+v", reference=ref)
        assert r.counters.checks <= r.counters.backedges  # hoisted checks

    def test_s258_biased_data(self):
        w = tsvc.s258_biased()
        ref = run_workload(w, "O0")
        verified_run(w, "supervec+v", reference=ref)


class TestSpecLikeVerified:
    @pytest.mark.parametrize("factory", speclike.ALL, ids=lambda f: f.__name__)
    def test_rle_verified(self, factory):
        w = factory()
        base = run_workload(w, "O3-scalar", rle=False)
        verified_run(w, "O3-scalar", reference=base, rle=True)

    def test_lbm_profile(self):
        w = speclike.lbm_r()
        base = run_workload(w, "O3-scalar", rle=False)
        opt = verified_run(w, "O3-scalar", reference=base, rle=True)
        assert opt.counters.loads < base.counters.loads
        assert opt.cycles < base.cycles

    def test_povray_checks_fail(self):
        """hit == ray: the checks fail, results stay exact, no gain."""
        w = speclike.povray_r()
        base = run_workload(w, "O3-scalar", rle=False)
        opt = verified_run(w, "O3-scalar", reference=base, rle=True)
        assert opt.counters.loads >= base.counters.loads  # nothing saved
        assert opt.cycles >= base.cycles  # pure overhead


class TestHarness:
    def test_checksum_mismatch_detected(self):
        """The harness must catch a miscompile: corrupt a module by hand
        and confirm verified_run raises."""
        from repro.perf.measure import ArrayArg, Workload, build, execute

        w = Workload(
            "broken",
            "void kernel(double *a, int n) { for (int i = 0; i < n; i++) a[i] = 1.0; }",
            [ArrayArg("a", 8), __import__("repro.perf.measure", fromlist=["ScalarArg"]).ScalarArg("n", 8)],
            entry="kernel",
        )
        ref = run_workload(w, "O0")
        module, stats = build(w, "O0")
        # sabotage: flip the stored constant
        from repro.ir.values import const_float

        store = [i for i in module["kernel"].instructions() if i.opcode == "store"][0]
        store.set_operand(1, const_float(2.0))
        result = execute(module, w, stats)
        assert result.checksum != ref.checksum

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_pipeline_levels_all_run(self):
        src = "double f(double * restrict a, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += a[i]; return s; }"
        for level in PIPELINES:
            module, stats = compile_and_optimize(src, level)
            assert "f" in module.functions
