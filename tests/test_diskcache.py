"""Tests for the persistent on-disk build cache (repro.perf.diskcache).

The contract under test: a warm load is *equivalent* to the build that
stored it (same printed IR, same execution results), the content key is
sensitive to everything that determines build output, and caches rooted
at different ``REPRO_CACHE_DIR`` values never see each other's entries.
"""

import multiprocessing
import os

import pytest

from repro.ir.printer import print_module
from repro.perf import diskcache, measure
from repro.workloads import tsvc

LEVEL = "supervec+v"


def _workload(name="s000"):
    return [w for w in tsvc.workloads() if w.name == name][0]


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(d))
    monkeypatch.delenv("REPRO_CACHE_CAP", raising=False)
    measure.clear_build_cache()
    yield str(d)
    measure.clear_build_cache()


def _fingerprint(module, w, stats):
    res = measure.execute(module, w, stats)
    return res.cycles, res.checksum, res.counters.as_dict()


class TestColdWarmEquivalence:
    def test_warm_load_matches_stored_build(self, cache_dir):
        w = _workload()
        # the storing build: this module IS the pickled artifact
        stored_module, stored_stats = measure.build(w, LEVEL, use_cache=True)
        stored_print = print_module(stored_module)
        stored_fp = _fingerprint(stored_module, w, stored_stats)
        assert diskcache.entry_count() == 1

        # drop in-memory caches so the next build must come from disk
        measure.clear_build_cache()
        warm_module, warm_stats = measure.build(w, LEVEL, use_cache=True)
        assert warm_module is not stored_module  # fresh unpickle
        assert print_module(warm_module) == stored_print
        assert _fingerprint(warm_module, w, warm_stats) == stored_fp

    def test_loads_never_share_objects(self, cache_dir):
        w = _workload()
        measure.build(w, LEVEL, use_cache=True)
        key = diskcache.cache_key(w.source, w.entry, LEVEL, True, 4, False)
        m1, _ = diskcache.load(key)
        m2, _ = diskcache.load(key)
        assert m1 is not m2
        fns1, fns2 = list(m1.functions.values()), list(m2.functions.values())
        assert all(a is not b for a, b in zip(fns1, fns2))

    def test_exec_source_artifact_written(self, cache_dir):
        w = _workload()
        measure.build(w, LEVEL, use_cache=True)
        key = diskcache.cache_key(w.source, w.entry, LEVEL, True, 4, False)
        path = diskcache._path(cache_dir, key)
        exec_txt = path[: -len(".pkl")] + ".exec.txt"
        assert os.path.exists(exec_txt)
        with open(exec_txt) as f:
            text = f.read()
        assert "fused executor" in text and w.entry in text
        # format 2: the array-tier source rides along, with its batched
        # regions named so a cache inspection shows what got vectorized
        assert "array executor" in text and "batched regions" in text


class TestKeySensitivity:
    BASE = dict(entry="k", level=LEVEL, honor_restrict=True, vl=4, rle=False)

    def _key(self, source="void k(double* a) {}", **over):
        kw = dict(self.BASE, **over)
        return diskcache.cache_key(source, kw["entry"], kw["level"],
                                   kw["honor_restrict"], kw["vl"], kw["rle"])

    def test_stable_for_identical_inputs(self):
        assert self._key() == self._key()

    def test_source_edit_changes_key(self):
        assert self._key() != self._key(source="void k(double* b) {}")

    def test_level_changes_key(self):
        assert self._key() != self._key(level="O3")

    def test_vl_changes_key(self):
        assert self._key() != self._key(vl=8)

    def test_honor_restrict_changes_key(self):
        assert self._key() != self._key(honor_restrict=False)

    def test_rle_changes_key(self):
        assert self._key() != self._key(rle=True)

    def test_entry_changes_key(self):
        assert self._key() != self._key(entry="other")

    def test_distinct_configs_cache_distinct_artifacts(self, cache_dir):
        w = _workload()
        measure.build(w, LEVEL, use_cache=True)
        measure.clear_build_cache()
        measure.build(w, "O3", use_cache=True)
        assert diskcache.entry_count() == 2


class TestIsolationAndKnobs:
    def test_disabled_when_dir_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert diskcache.cache_dir() is None
        assert diskcache.load("0" * 64) is None
        assert diskcache.store("0" * 64, None, None) is None

    def test_disabled_when_cap_zero(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_CAP", "0")
        assert diskcache.cache_dir() is None

    def test_cache_dirs_are_isolated(self, tmp_path, monkeypatch):
        w = _workload()
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(dir_a))
        measure.clear_build_cache()
        measure.build(w, LEVEL, use_cache=True)
        assert diskcache.entry_count() == 1

        monkeypatch.setenv("REPRO_CACHE_DIR", str(dir_b))
        measure.clear_build_cache()
        assert diskcache.entry_count() == 0
        key = diskcache.cache_key(w.source, w.entry, LEVEL, True, 4, False)
        assert diskcache.load(key) is None  # dir_a's entry is invisible
        measure.build(w, LEVEL, use_cache=True)
        assert diskcache.entry_count() == 1
        measure.clear_build_cache()

    def test_corrupt_entry_is_a_miss_and_removed(self, cache_dir):
        w = _workload()
        measure.build(w, LEVEL, use_cache=True)
        key = diskcache.cache_key(w.source, w.entry, LEVEL, True, 4, False)
        path = diskcache._path(cache_dir, key)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert diskcache.load(key) is None
        assert not os.path.exists(path)

    def test_eviction_respects_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_CAP", "2")
        for i in range(4):
            diskcache.store(f"{i:064x}", None, None)
        assert diskcache.entry_count() <= 2

    def test_key_embeds_format_version(self):
        k1 = diskcache.cache_key("s", "e", LEVEL, True, 4, False)
        orig = diskcache.FORMAT_VERSION
        try:
            diskcache.FORMAT_VERSION = orig + 1
            assert diskcache.cache_key("s", "e", LEVEL, True, 4, False) != k1
        finally:
            diskcache.FORMAT_VERSION = orig

    def test_format_version_bumped_for_array_artifacts(self):
        # regression guard: entries written before the array tier (format
        # 1) must miss rather than serve artifacts lacking the array
        # executor dump
        assert diskcache.FORMAT_VERSION >= 2


def _hammer_store_load(args):
    """Worker body for the concurrent-access hammer (module level so it
    pickles across the fork)."""
    root, cap, i = args
    os.environ["REPRO_CACHE_DIR"] = root
    os.environ["REPRO_CACHE_CAP"] = str(cap)
    ok = True
    # N workers x one shared key: stores race, loads must never see a
    # half-written or foreign payload
    shared = "a" * 64
    diskcache.store(shared, {"payload": "shared"}, None)
    got = diskcache.load(shared)
    ok &= got is None or got[0] == {"payload": "shared"}
    # N workers x distinct keys: each round-trips its own entry
    mine = f"{i:064x}"
    diskcache.store(mine, {"payload": i}, None)
    got = diskcache.load(mine)
    ok &= got is None or got[0] == {"payload": i}
    return ok


class TestEvictionLocking:
    """The mtime-LRU eviction race fix: single evictor per store."""

    @pytest.fixture
    def small_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_CAP", "2")
        return str(tmp_path)

    def test_held_lock_skips_eviction(self, small_cache):
        lock = diskcache._evict_lock(small_cache)
        assert lock is not None
        try:
            # flock is per open-file-description: store()'s evict step
            # loses the race against our held lock and must skip
            for i in range(5):
                diskcache.store(f"{i:064x}", None, None)
            assert diskcache.entry_count() == 5  # over cap, untouched
        finally:
            lock.close()
        # with the lock released the next scan shrinks to the cap
        diskcache._evict(small_cache)
        assert diskcache.entry_count() <= 2

    def test_lock_is_exclusive_and_releases(self, small_cache):
        lock = diskcache._evict_lock(small_cache)
        assert lock is not None
        assert diskcache._evict_lock(small_cache) is None  # contended
        lock.close()
        relock = diskcache._evict_lock(small_cache)
        assert relock is not None  # close released the flock
        relock.close()

    def test_vanishing_entries_tolerated(self, small_cache):
        for i in range(4):
            diskcache.store(f"{i:064x}", None, None)
        # a dangling symlink is listed by the scan but vanishes at stat
        # time — exactly what a concurrent evictor's deletion looks like
        sub = os.path.join(small_cache, "ff")
        os.makedirs(sub, exist_ok=True)
        os.symlink(os.path.join(small_cache, "nowhere"),
                   os.path.join(sub, "f" * 64 + ".pkl"))
        diskcache._evict(small_cache)  # must not raise
        real = [
            os.path.join(small_cache, s, n)
            for s in os.listdir(small_cache)
            if len(s) == 2 and os.path.isdir(os.path.join(small_cache, s))
            for n in os.listdir(os.path.join(small_cache, s))
            if n.endswith(".pkl")
            and os.path.exists(os.path.join(small_cache, s, n))
        ]
        assert len(real) <= 2

    def test_multiprocess_hammer(self, tmp_path, monkeypatch):
        """Concurrent store/load/evict across real processes: every load
        is either a miss or exactly what that worker stored."""
        root = str(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", root)
        monkeypatch.setenv("REPRO_CACHE_CAP", "4")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_hammer_store_load,
                               [(root, 4, i) for i in range(8)])
        assert all(results)
        # no half-written temp files survive the stampede
        leftovers = [
            n
            for s in os.listdir(root)
            if os.path.isdir(os.path.join(root, s))
            for n in os.listdir(os.path.join(root, s))
            if ".tmp." in n
        ]
        assert leftovers == []


class TestPickleRoundTrip:
    def test_predicates_reintern_after_unpickle(self, cache_dir):
        w = _workload("s271")  # has conditional code -> real predicates
        measure.build(w, LEVEL, use_cache=True)
        key = diskcache.cache_key(w.source, w.entry, LEVEL, True, 4, False)
        loaded, _ = diskcache.load(key)
        preds = [
            inst.predicate
            for fn in loaded.functions.values()
            for inst in fn.instructions()
        ]
        assert any(not p.is_true() for p in preds)
        # interning restored inside the loaded graph: within one module,
        # predicates with equal literal sets are one object (pointer-fast
        # equality is what the worklist passes rely on)
        by_lits = {}
        for p in preds:
            other = by_lits.setdefault(p.literals, p)
            assert other is p
